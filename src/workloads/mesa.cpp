#include "workloads/workload.h"

/**
 * @file
 * mesa analogue (177.mesa): software 3D vertex pipeline. Scene
 * vertices (4 doubles each) are re-transformed through a fixed
 * matrix row every frame even though almost none moved between
 * frames.
 *
 * Baseline transforms every vertex each frame. DTT triggers on
 * vertex-coordinate writes; the handler re-transforms just that
 * vertex (disjoint output slot). The per-frame raster pass over the
 * transformed coordinates (fixed-point accumulation) is shared. The
 * transform expression is emitted identically in both variants, so
 * checksums match bit-for-bit.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kVertexWords = 4;  // x, y, z, w (power of two)

class MesaWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "mesa";
        i.specAnalogue = "177.mesa";
        i.kernelDesc = "vertex transform pipeline over a mostly-"
                       "static scene";
        i.triggerDesc = "vertex coordinates, striped by vertex id";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.25;
        i.defaultIterations = 15;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int V = 512 * p.scale;     // vertices
        const int N = V * kVertexWords;  // coordinate cells
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<double> coords(static_cast<std::size_t>(N));
        for (auto &c : coords)
            c = rng.real() * 4.0 - 2.0;
        // Fixed transform row (m0..m3).
        const double m0 = 0.8, m1 = -0.3, m2 = 0.5, m3 = 1.25;
        auto transform_host = [&](const double *v) {
            return m0 * v[0] + m1 * v[1] + m2 * v[2] + m3 * v[3];
        };
        std::vector<double> xformed(static_cast<std::size_t>(V));
        for (int v = 0; v < V; ++v)
            xformed[size_t(v)] =
                transform_host(&coords[size_t(v * kVertexWords)]);

        std::vector<std::int64_t> mirror = doubleBits(coords);
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return doubleBits(rng.real() * 4.0 - 2.0);
            });

        ProgramBuilder b;
        Addr coord_a = b.quads("coords", doubleBits(coords));
        Addr xf_a = b.quads("xformed", doubleBits(xformed));
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 4096 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label xform = b.newLabel();      // a0 = vertex id

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- scene edits (sparse vertex moves, mostly silent) --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);             // coordinate cell index
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(coord_a));
            b.srli(t4, t2, 2);           // vertex = cell / 4
            b.andi(t4, t4, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            // -- transform every vertex (redundant) --
            b.li(s7, V);
            b.li(s6, 0);
            Label again = b.here();
            b.mv(a0, s6);
            b.call(xform);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- raster pass: fold transformed coords in fixed point --
        b.li(s6, 0);
        b.la(t2, xf_a);
        b.li(t1, V);
        b.loop(t0, t1, [&] {
            b.fld(ft0, t2, 0);
            b.fli(ft1, 64.0);
            b.fmul(ft0, ft0, ft1);
            b.fcvtwd(t4, ft0);
            b.add(s6, s6, t4);
            b.addi(t2, t2, 8);
        });

        if (!dtt) {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- transform subroutine: a0 = vertex id --
        b.bind(xform);
        b.slli(t6, a0, 2 + 3);           // vertex * 4 words * 8
        b.addi(t6, t6, std::int64_t(coord_a));
        b.fld(ft0, t6, 0);
        b.fli(ft4, 0.8);
        b.fmul(ft0, ft0, ft4);
        b.fld(ft1, t6, 8);
        b.fli(ft4, -0.3);
        b.fmul(ft1, ft1, ft4);
        b.fadd(ft0, ft0, ft1);
        b.fld(ft2, t6, 16);
        b.fli(ft4, 0.5);
        b.fmul(ft2, ft2, ft4);
        b.fadd(ft0, ft0, ft2);
        b.fld(ft3, t6, 24);
        b.fli(ft4, 1.25);
        b.fmul(ft3, ft3, ft4);
        b.fadd(ft0, ft0, ft3);
        b.slli(t7, a0, 3);
        b.addi(t7, t7, std::int64_t(xf_a));
        b.fsd(ft0, t7, 0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &coords[cell]; re-transform its vertex.
            b.bind(handler);
            b.li(t0, std::int64_t(coord_a));
            b.sub(t0, a0, t0);
            b.srli(a0, t0, 2 + 3);       // vertex id
            b.call(xform);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
mesaWorkload()
{
    static MesaWorkload w;
    return w;
}

} // namespace dttsim::workloads
