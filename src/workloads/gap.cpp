#include "workloads/workload.h"

/**
 * @file
 * gap analogue (254.gap): computer-algebra permutation machinery.
 * A generator permutation table is edited rarely (and often re-
 * written with the entry it already holds); the group machinery
 * consumes the *composite* image table g2[g1[p]] for every point.
 *
 * Baseline recomposes the full composite table each round. DTT
 * triggers on g1-entry writes; the handler re-derives the composite
 * image for that point alone (g2 is fixed). The orbit-sum consumer
 * and the interpreter's other work are shared.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;

class GapWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "gap";
        i.specAnalogue = "254.gap";
        i.kernelDesc = "composite permutation-image table under"
                       " sparse generator edits";
        i.triggerDesc = "generator table entries, striped by point";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.3;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int P = 1024 * p.scale;    // points
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<std::int64_t> g1(static_cast<std::size_t>(P));
        std::vector<std::int64_t> g2(static_cast<std::size_t>(P));
        for (auto &v : g1)
            v = rng.range(0, P - 1);
        for (auto &v : g2)
            v = rng.range(0, P - 1);
        std::vector<std::int64_t> composite(g1.size());
        for (int pt = 0; pt < P; ++pt)
            composite[size_t(pt)] =
                g2[static_cast<std::size_t>(g1[size_t(pt)])];

        std::vector<std::int64_t> mirror = g1;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate,
            [&](std::int64_t) { return rng.range(0, P - 1); });

        ProgramBuilder b;
        Addr g1_a = b.quads("g1", g1);
        Addr g2_a = b.quads("g2", g2);
        Addr comp_a = b.quads("composite", composite);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 4096 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- generator edits --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(g1_a));
            b.andi(t4, t2, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            // -- recompose the full image table (redundant) --
            b.la(t2, g1_a);
            b.la(t3, comp_a);
            b.li(t1, P);
            b.loop(t0, t1, [&] {
                b.ld(t4, t2, 0);        // g1[p]
                b.slli(t4, t4, 3);
                b.addi(t4, t4, std::int64_t(g2_a));
                b.ld(t4, t4, 0);        // g2[g1[p]]
                b.sd(t4, t3, 0);
                b.addi(t2, t2, 8);
                b.addi(t3, t3, 8);
            });
        } else {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- orbit-sum consumer: chase images from sampled seeds --
        b.li(s6, 0);
        b.li(t1, 64);
        b.loop(t0, t1, [&] {
            // seed = t0 * 16; follow 8 composite hops
            b.slli(t2, t0, 4);
            for (int hop = 0; hop < 8; ++hop) {
                b.slli(t3, t2, 3);
                b.addi(t3, t3, std::int64_t(comp_a));
                b.ld(t2, t3, 0);
            }
            b.add(s6, s6, t2);
        });

        if (!dtt) {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        if (dtt) {
            // Handler: a0 = &g1[p], a1 = new image.
            b.bind(handler);
            b.ld(t0, a0, 0);            // current g1[p]
            b.slli(t0, t0, 3);
            b.addi(t0, t0, std::int64_t(g2_a));
            b.ld(t0, t0, 0);            // g2[g1[p]]
            b.li(t1, std::int64_t(g1_a));
            b.sub(t1, a0, t1);          // byte offset = p * 8
            b.addi(t1, t1, std::int64_t(comp_a));
            b.sd(t0, t1, 0);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
gapWorkload()
{
    static GapWorkload w;
    return w;
}

} // namespace dttsim::workloads
