#include "workloads/kernel_util.h"

#include <cstring>

namespace dttsim::workloads {

std::vector<std::int64_t>
doubleBits(const std::vector<double> &vals)
{
    std::vector<std::int64_t> out(vals.size());
    std::memcpy(out.data(), vals.data(), vals.size() * 8);
    return out;
}

std::int64_t
doubleBits(double v)
{
    std::int64_t out;
    std::memcpy(&out, &v, 8);
    return out;
}

void
emitEpilogue(isa::ProgramBuilder &b, isa::Reg checksum,
             Addr result_addr, isa::Reg scratch)
{
    b.la(scratch, result_addr);
    b.sd(checksum, scratch, 0);
    b.halt();
}

void
emitIndex8(isa::ProgramBuilder &b, isa::Reg dst, Addr base_addr,
           isa::Reg idx)
{
    b.slli(dst, idx, 3);
    b.addi(dst, dst, static_cast<std::int64_t>(base_addr));
}

void
emitStripedStore(isa::ProgramBuilder &b, bool dtt, isa::Reg value,
                 isa::Reg addr, isa::Reg stripe, isa::Reg scratch)
{
    using namespace isa::regs;
    if (!dtt) {
        b.sd(value, addr, 0);
        return;
    }
    isa::Label l1 = b.newLabel(), l2 = b.newLabel();
    isa::Label l3 = b.newLabel(), done = b.newLabel();
    b.bnez(stripe, l1);
    b.tsd(value, addr, 0, 0);
    b.j(done);
    b.bind(l1);
    b.li(scratch, 1);
    b.bne(stripe, scratch, l2);
    b.tsd(value, addr, 0, 1);
    b.j(done);
    b.bind(l2);
    b.li(scratch, 2);
    b.bne(stripe, scratch, l3);
    b.tsd(value, addr, 0, 2);
    b.j(done);
    b.bind(l3);
    b.tsd(value, addr, 0, 3);
    b.bind(done);
}

std::vector<std::int64_t>
makeMixerData(Rng &rng, int elems)
{
    std::vector<std::int64_t> data(static_cast<std::size_t>(elems));
    for (auto &v : data)
        v = static_cast<std::int64_t>(rng.next());
    return data;
}

void
emitMixer(isa::ProgramBuilder &b, Addr base, int elems, isa::Reg acc)
{
    using namespace isa::regs;
    b.la(t2, base);
    b.li(t1, elems);
    b.loop(t0, t1, [&] {
        b.ld(t4, t2, 0);
        b.xor_(acc, acc, t4);
        b.srli(t5, t4, 7);
        b.add(acc, acc, t5);
        b.andi(t5, t4, 1);
        isa::Label skip = b.newLabel();
        b.beqz(t5, skip);
        b.addi(acc, acc, 3);
        b.bind(skip);
        b.addi(t2, t2, 8);
    });
}

} // namespace dttsim::workloads
