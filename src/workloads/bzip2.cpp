#include "workloads/workload.h"

/**
 * @file
 * bzip2 analogue (256.bzip2): per-block compression over a buffer in
 * which writes frequently rewrite bytes with their existing values
 * (silent stores). Baseline recompresses every block each iteration;
 * DTT recompresses only blocks whose bytes actually changed, via
 * byte-granularity triggering stores (TSB) striped by block group.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kBlockBytes = 32;      // K (power of two: shift 5)
constexpr int kBlockShift = 5;

class Bzip2Workload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "bzip2";
        i.specAnalogue = "256.bzip2";
        i.kernelDesc = "per-block RLE+hash compression of a buffer"
                       " with mostly-unchanged blocks";
        i.triggerDesc = "buffer bytes (TSB), striped by block group";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.35;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int B = 32 * p.scale;          // blocks
        const int K = kBlockBytes;
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<std::uint8_t> buf(static_cast<std::size_t>(B * K));
        for (auto &v : buf)
            v = static_cast<std::uint8_t>(rng.below(8));  // runs likely

        // Host compression mirror (hash + run-length output count).
        auto compress_host = [&](const std::uint8_t *block,
                                 std::int64_t &hash, std::int64_t &len) {
            std::uint64_t h = 0;  // unsigned: wraps like the ISA's MUL
            len = 0;
            int prev = -1;
            for (int i = 0; i < K; ++i) {
                h = h * 131 + block[i];
                if (block[i] != prev)
                    ++len;
                prev = block[i];
            }
            hash = static_cast<std::int64_t>(h);
        };
        std::vector<std::int64_t> block_hash(static_cast<std::size_t>(B));
        std::vector<std::int64_t> block_len(block_hash.size());
        for (int bi = 0; bi < B; ++bi)
            compress_host(&buf[static_cast<std::size_t>(bi * K)],
                          block_hash[size_t(bi)], block_len[size_t(bi)]);

        std::vector<std::int64_t> mirror(buf.begin(), buf.end());
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return static_cast<std::int64_t>(rng.below(8));
            });

        ProgramBuilder b;
        Addr buf_a = b.bytes("buf", buf);
        Addr hash_a = b.quads("blockHash", block_hash);
        Addr len_a = b.quads("blockLen", block_len);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 4096 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label compress = b.newLabel();   // a0 = block index

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- byte updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);                // byte index
            b.ld(t3, s5, 0);                // byte value
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.addi(t5, t2, std::int64_t(buf_a));
            if (!dtt) {
                b.sb(t3, t5, 0);
            } else {
                b.srli(t4, t2, kBlockShift);   // block
                b.andi(t4, t4, kStripes - 1);  // stripe
                Label l1 = b.newLabel(), l2 = b.newLabel();
                Label l3 = b.newLabel(), done = b.newLabel();
                b.bnez(t4, l1);
                b.tsb(t3, t5, 0, 0);
                b.j(done);
                b.bind(l1);
                b.li(t6, 1);
                b.bne(t4, t6, l2);
                b.tsb(t3, t5, 0, 1);
                b.j(done);
                b.bind(l2);
                b.li(t6, 2);
                b.bne(t4, t6, l3);
                b.tsb(t3, t5, 0, 2);
                b.j(done);
                b.bind(l3);
                b.tsb(t3, t5, 0, 3);
                b.bind(done);
            }
        });

        if (!dtt) {
            // -- recompress every block (redundant computation) --
            b.li(s7, B);
            Label again = b.newLabel();
            b.li(s6, 0);
            b.bind(again);
            b.mv(a0, s6);
            b.call(compress);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- consume: fold compressed lengths and hashes --
        b.li(s6, 0);
        b.la(t2, hash_a);
        b.la(t3, len_a);
        b.li(t1, B);
        b.loop(t0, t1, [&] {
            b.ld(t4, t2, 0);
            b.ld(t5, t3, 0);
            b.xor_(s6, s6, t4);
            b.add(s6, s6, t5);
            b.addi(t2, t2, 8);
            b.addi(t3, t3, 8);
        });

        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- compress subroutine: a0 = block index --
        b.bind(compress);
        b.slli(t0, a0, kBlockShift);
        b.addi(t0, t0, std::int64_t(buf_a));   // byte cursor
        b.li(t2, 0);                           // hash
        b.li(t3, 0);                           // out length
        b.li(t4, -1);                          // prev byte
        b.li(t6, 131);
        b.li(t8, K);
        b.loop(t7, t8, [&] {
            b.lb(t5, t0, 0);
            b.mul(t2, t2, t6);
            b.add(t2, t2, t5);
            Label same = b.newLabel();
            b.beq(t5, t4, same);
            b.addi(t3, t3, 1);
            b.bind(same);
            b.mv(t4, t5);
            b.addi(t0, t0, 1);
        });
        b.slli(t0, a0, 3);
        b.addi(t5, t0, std::int64_t(hash_a));
        b.sd(t2, t5, 0);
        b.addi(t5, t0, std::int64_t(len_a));
        b.sd(t3, t5, 0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &buf[byte]; recompress that block.
            b.bind(handler);
            b.li(t0, std::int64_t(buf_a));
            b.sub(t0, a0, t0);
            b.srli(a0, t0, kBlockShift);       // block index
            b.call(compress);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
bzip2Workload()
{
    static Bzip2Workload w;
    return w;
}

} // namespace dttsim::workloads
