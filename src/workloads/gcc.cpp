#include "workloads/workload.h"

/**
 * @file
 * gcc analogue (176.gcc): per-basic-block dataflow bitvectors
 * (out = gen | (in & ~kill)) recomputed as the optimizer edits
 * gen/kill sets. The edit rate is *high* and edits usually change the
 * sets, so triggers fire constantly: this is the workload where DTT's
 * overheads (spawn cost, thread-queue pressure, SMT contention) are
 * not repaid — the paper's near-neutral / crossover case.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;

class GccWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "gcc";
        i.specAnalogue = "176.gcc";
        i.kernelDesc = "dataflow bitvector recompute under frequent"
                       " gen/kill edits (high trigger rate)";
        i.triggerDesc = "gen/kill bitvector words, striped by block";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.6;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int B = 256 * p.scale;     // basic blocks (power of 2)
        const int T = p.iterations;
        const int U = 48;                // edits per iteration (high)

        Rng rng(p.seed);

        // gk[0..B) = gen, gk[B..2B) = kill.
        std::vector<std::int64_t> gk(static_cast<std::size_t>(2 * B));
        for (auto &v : gk)
            v = static_cast<std::int64_t>(rng.next());
        std::vector<std::int64_t> in(static_cast<std::size_t>(B));
        for (auto &v : in)
            v = static_cast<std::int64_t>(rng.next());
        std::vector<std::int64_t> out(static_cast<std::size_t>(B));
        for (int bi = 0; bi < B; ++bi)
            out[size_t(bi)] = gk[size_t(bi)]
                | (in[size_t(bi)] & ~gk[size_t(B + bi)]);

        std::vector<std::int64_t> mirror = gk;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return static_cast<std::int64_t>(rng.next());
            });

        ProgramBuilder b;
        Addr gk_a = b.quads("genKill", gk);
        Addr in_a = b.quads("in", in);
        Addr out_a = b.quads("out", out);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 2048 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label recompute = b.newLabel();  // a0 = block index

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- gen/kill edits --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);                 // k in [0, 2B)
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(gk_a));
            b.andi(t4, t2, kStripes - 1);    // block & 3 == k & 3
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            // -- recompute all out vectors --
            b.li(s7, B);
            b.li(s6, 0);
            Label again = b.here();
            b.mv(a0, s6);
            b.call(recompute);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- consume: fold the out vectors --
        b.li(s6, 0);
        b.la(t2, out_a);
        b.li(t1, B);
        b.loop(t0, t1, [&] {
            b.ld(t4, t2, 0);
            b.xor_(s6, s6, t4);
            b.srli(t5, t4, 3);
            b.add(s6, s6, t5);
            b.addi(t2, t2, 8);
        });

        // -- rest-of-program pass (shared) --
        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- recompute subroutine: a0 = block index --
        b.bind(recompute);
        b.slli(t0, a0, 3);
        b.addi(t1, t0, std::int64_t(gk_a));
        b.ld(t2, t1, 0);                     // gen
        b.ld(t3, t1, 8ll * B);               // kill lives B words later
        b.addi(t4, t0, std::int64_t(in_a));
        b.ld(t4, t4, 0);                     // in
        b.xori(t3, t3, -1);                  // ~kill
        b.and_(t3, t3, t4);
        b.or_(t2, t2, t3);
        b.addi(t5, t0, std::int64_t(out_a));
        b.sd(t2, t5, 0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &gk[k]; recompute out[k mod B].
            b.bind(handler);
            b.li(t0, std::int64_t(gk_a));
            b.sub(t0, a0, t0);
            b.srli(t0, t0, 3);               // k
            b.andi(a0, t0, B - 1);           // block index
            b.call(recompute);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
gccWorkload()
{
    static GccWorkload w;
    return w;
}

} // namespace dttsim::workloads
