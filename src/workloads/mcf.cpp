#include "workloads/workload.h"

/**
 * @file
 * mcf analogue (181.mcf): the paper's flagship DTT target,
 * refresh_potential. A forest of M chains of length L carries
 * per-node costs; node potentials are running prefix sums of the
 * costs along each chain, and each simplex iteration consumes the
 * chain-potential aggregates plus an arc-pricing pass over the
 * potentials.
 *
 * Baseline: every outer iteration applies a few sparse cost updates
 * (mostly silent) and then re-runs refresh_potential over *all*
 * M*L nodes — the redundant computation the paper measures.
 *
 * DTT: cost updates are triggering stores (striped across 4 trigger
 * ids by chain group). The handler recomputes the potential suffix of
 * the affected chain and its chain aggregate. The main thread skips
 * refresh_potential entirely: it TWAITs the stripes and consumes the
 * aggregates. Silent updates trigger nothing — that computation
 * simply never happens.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kChainLen = 64;        // L (power of two: shift by 6)
constexpr int kChainShift = 6;

class McfWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "mcf";
        i.specAnalogue = "181.mcf";
        i.kernelDesc = "refresh_potential prefix-sum over chain forest"
                       " + arc pricing";
        i.triggerDesc = "node cost fields, striped by chain group";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.25;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int M = 64 * p.scale;          // chains
        const int L = kChainLen;
        const int N = M * L;                 // nodes
        const int A = 24 * M;                // pricing arcs
        const int T = p.iterations;
        const int U = 8;                     // updates per iteration

        Rng rng(p.seed);

        // ----- host-side input generation ---------------------------
        std::vector<std::int64_t> cost(static_cast<std::size_t>(N));
        for (auto &c : cost)
            c = rng.range(1, 100);

        std::vector<std::int64_t> potential(cost.size());
        std::vector<std::int64_t> chain_sum(static_cast<std::size_t>(M));
        for (int c = 0; c < M; ++c) {
            std::int64_t run = 0, sum = 0;
            for (int j = 0; j < L; ++j) {
                run += cost[static_cast<std::size_t>(c * L + j)];
                potential[static_cast<std::size_t>(c * L + j)] = run;
                sum += run;
            }
            chain_sum[static_cast<std::size_t>(c)] = sum;
        }

        std::vector<std::int64_t> arc_tail(static_cast<std::size_t>(A));
        std::vector<std::int64_t> arc_head(arc_tail.size());
        std::vector<std::int64_t> arc_cost(arc_tail.size());
        for (int a = 0; a < A; ++a) {
            arc_tail[size_t(a)] = rng.range(0, N - 1);
            arc_head[size_t(a)] = rng.range(0, N - 1);
            arc_cost[size_t(a)] = rng.range(-50, 50);
        }

        std::vector<std::int64_t> mirror = cost;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate,
            [&](std::int64_t) { return rng.range(1, 100); });

        // ----- data segment -----------------------------------------
        ProgramBuilder b;
        Addr cost_a = b.quads("cost", cost);
        Addr pot_a = b.quads("potential", potential);
        Addr csum_a = b.quads("chainSum", chain_sum);
        Addr tail_a = b.quads("arcTail", arc_tail);
        Addr head_a = b.quads("arcHead", arc_head);
        Addr acost_a = b.quads("arcCost", arc_cost);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 1024 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        // ----- program ----------------------------------------------
        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);            // checksum
        b.li(s1, 0);            // t
        b.li(s2, T);
        b.la(s4, sidx_a);       // schedule index cursor
        b.la(s5, sval_a);       // schedule value cursor

        Label outer = b.here();

        // -- apply this iteration's updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);                // k
            b.ld(t3, s5, 0);                // new value
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(cost_a));
            if (!dtt) {
                b.sd(t3, t5, 0);
            } else {
                // stripe = (k >> kChainShift) & (kStripes-1)
                b.srli(t4, t2, kChainShift);
                b.andi(t4, t4, kStripes - 1);
                Label s1l = b.newLabel(), s2l = b.newLabel();
                Label s3l = b.newLabel(), done = b.newLabel();
                b.bnez(t4, s1l);
                b.tsd(t3, t5, 0, 0);
                b.j(done);
                b.bind(s1l);
                b.li(t6, 1);
                b.bne(t4, t6, s2l);
                b.tsd(t3, t5, 0, 1);
                b.j(done);
                b.bind(s2l);
                b.li(t6, 2);
                b.bne(t4, t6, s3l);
                b.tsd(t3, t5, 0, 2);
                b.j(done);
                b.bind(s3l);
                b.tsd(t3, t5, 0, 3);
                b.bind(done);
            }
        });

        if (!dtt) {
            // -- refresh_potential over every chain (the redundant
            //    computation) --
            b.li(t1, M);
            b.loop(t0, t1, [&] {
                b.slli(t6, t0, kChainShift + 3);   // chain byte base
                b.addi(t7, t6, std::int64_t(cost_a));
                b.addi(t6, t6, std::int64_t(pot_a));
                b.li(t4, 0);                       // running potential
                b.li(t5, 0);                       // chain sum
                b.li(t3, L);
                b.loop(t2, t3, [&] {
                    b.ld(t8, t7, 0);
                    b.add(t4, t4, t8);
                    b.sd(t4, t6, 0);
                    b.add(t5, t5, t4);
                    b.addi(t7, t7, 8);
                    b.addi(t6, t6, 8);
                });
                b.slli(t6, t0, 3);
                b.addi(t6, t6, std::int64_t(csum_a));
                b.sd(t5, t6, 0);
            });
        } else {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- objective: sum of chain aggregates --
        b.li(s6, 0);
        b.li(t1, M);
        b.la(t2, csum_a);
        b.loop(t0, t1, [&] {
            b.ld(t3, t2, 0);
            b.add(s6, s6, t3);
            b.addi(t2, t2, 8);
        });

        // -- arc pricing over potentials (non-redundant work both
        //    variants share; sets the Amdahl floor) --
        b.li(s7, 0);                        // negative-arc count
        b.li(t1, A);
        b.la(t2, tail_a);
        b.la(t3, head_a);
        b.la(t4, acost_a);
        b.loop(t0, t1, [&] {
            b.ld(t5, t2, 0);                // tail node
            b.ld(t6, t3, 0);                // head node
            b.slli(t5, t5, 3);
            b.addi(t5, t5, std::int64_t(pot_a));
            b.ld(t5, t5, 0);                // potential[tail]
            b.slli(t6, t6, 3);
            b.addi(t6, t6, std::int64_t(pot_a));
            b.ld(t6, t6, 0);                // potential[head]
            b.ld(t7, t4, 0);                // arc cost
            b.add(t7, t7, t5);
            b.sub(t7, t7, t6);              // reduced cost
            b.slt(t7, t7, zero);
            b.add(s7, s7, t7);
            b.addi(t2, t2, 8);
            b.addi(t3, t3, 8);
            b.addi(t4, t4, 8);
        });

        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        // -- fold into checksum --
        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s7);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        if (dtt) {
            // DTT handler: a0 = &cost[k]. Recompute the potential
            // suffix of the affected chain and its aggregate.
            b.bind(handler);
            b.li(t0, std::int64_t(cost_a));
            b.sub(t0, a0, t0);
            b.srli(t0, t0, 3);              // k
            b.srli(t1, t0, kChainShift);    // chain c
            b.andi(t2, t0, L - 1);          // j within chain
            b.slli(t3, t1, kChainShift);    // chain node base

            // running = (j == 0) ? 0 : potential[k-1]
            b.li(t4, 0);
            Label from_zero = b.newLabel();
            b.beqz(t2, from_zero);
            b.slli(t4, t0, 3);
            b.addi(t4, t4, std::int64_t(pot_a) - 8);
            b.ld(t4, t4, 0);
            b.bind(from_zero);

            // suffix recompute: i from j to L-1
            b.add(t5, t3, t2);              // node index base+j
            b.slli(t5, t5, 3);
            b.addi(t6, t5, std::int64_t(cost_a));
            b.addi(t5, t5, std::int64_t(pot_a));
            b.li(t7, L);
            b.sub(t7, t7, t2);              // remaining count
            Label suffix_done = b.newLabel();
            b.beqz(t7, suffix_done);
            Label suffix = b.here();
            b.ld(t8, t6, 0);
            b.add(t4, t4, t8);
            b.sd(t4, t5, 0);
            b.addi(t6, t6, 8);
            b.addi(t5, t5, 8);
            b.addi(t7, t7, -1);
            b.bnez(t7, suffix);
            b.bind(suffix_done);

            // chainSum[c] = sum of the chain's potentials
            b.slli(t5, t3, 3);
            b.addi(t5, t5, std::int64_t(pot_a));
            b.li(t6, 0);
            b.li(t8, L);
            b.loop(t7, t8, [&] {
                b.ld(t0, t5, 0);
                b.add(t6, t6, t0);
                b.addi(t5, t5, 8);
            });
            b.slli(t5, t1, 3);
            b.addi(t5, t5, std::int64_t(csum_a));
            b.sd(t6, t5, 0);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
mcfWorkload()
{
    static McfWorkload w;
    return w;
}

} // namespace dttsim::workloads
