#pragma once

/**
 * @file
 * Shared helpers for authoring workload kernels: host-side schedule
 * generation (which trigger-data elements are written each outer
 * iteration, with what values, and whether the write is silent) and
 * small emission utilities used by every workload.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "isa/builder.h"

namespace dttsim::workloads {

/**
 * A precomputed update schedule over an int64 host-mirrored array.
 * Each outer iteration performs `updatesPerIter` writes; a write is
 * *real* (new value) with probability updateRate, else *silent*
 * (rewrites the current value). The host mirror evolves alongside so
 * silent writes are exact.
 */
struct UpdateSchedule
{
    std::vector<std::int64_t> indices;  ///< iterations * updatesPerIter
    std::vector<std::int64_t> values;
    int iterations = 0;
    int updatesPerIter = 0;
    std::uint64_t realWrites = 0;
    std::uint64_t silentWrites = 0;
};

/**
 * Generate a schedule over @p mirror (modified in place to its final
 * state). @p new_value draws a replacement value for an index; it
 * must (almost always) differ from the current one for the realWrites
 * accounting to be meaningful.
 */
template <typename NewValueFn>
UpdateSchedule
makeSchedule(Rng &rng, std::vector<std::int64_t> &mirror, int iterations,
             int updates_per_iter, double update_rate,
             NewValueFn &&new_value)
{
    UpdateSchedule s;
    s.iterations = iterations;
    s.updatesPerIter = updates_per_iter;
    s.indices.reserve(static_cast<std::size_t>(iterations)
                      * static_cast<std::size_t>(updates_per_iter));
    s.values.reserve(s.indices.capacity());
    for (int t = 0; t < iterations; ++t) {
        for (int u = 0; u < updates_per_iter; ++u) {
            auto idx = static_cast<std::int64_t>(
                rng.below(mirror.size()));
            std::int64_t v;
            if (rng.chance(update_rate)) {
                v = new_value(idx);
                if (v != mirror[static_cast<std::size_t>(idx)])
                    ++s.realWrites;
                else
                    ++s.silentWrites;
                mirror[static_cast<std::size_t>(idx)] = v;
            } else {
                v = mirror[static_cast<std::size_t>(idx)];
                ++s.silentWrites;
            }
            s.indices.push_back(idx);
            s.values.push_back(v);
        }
    }
    return s;
}

/** Bit-cast a double vector for data-segment emission. */
std::vector<std::int64_t> doubleBits(const std::vector<double> &vals);

/** Bit-cast one double. */
std::int64_t doubleBits(double v);

/**
 * Emit the standard epilogue: store the checksum register to the
 * "result" data symbol and halt. @p result_addr must come from
 * `b.space("result", 8)`.
 */
void emitEpilogue(isa::ProgramBuilder &b, isa::Reg checksum,
                  Addr result_addr, isa::Reg scratch);

/**
 * Emit `dst = base_addr + idx * 8` using @p dst as scratch
 * (dst != idx required).
 */
void emitIndex8(isa::ProgramBuilder &b, isa::Reg dst, Addr base_addr,
                isa::Reg idx);

/**
 * Emit a store of @p value to the address in @p addr. In the DTT
 * variant it is a triggering store whose static trigger id is the
 * stripe index (0..3) held in @p stripe, dispatched through a 4-way
 * branch tree (trigger ids are static instruction fields); in the
 * baseline it is a plain store. Clobbers @p scratch.
 */
void emitStripedStore(isa::ProgramBuilder &b, bool dtt, isa::Reg value,
                      isa::Reg addr, isa::Reg stripe, isa::Reg scratch);

/** Host data for emitMixer (random 64-bit words). */
std::vector<std::int64_t> makeMixerData(Rng &rng, int elems);

/**
 * Emit the generic non-redundant "rest of the program" pass shared by
 * both variants: a data-dependent walk over @p elems words at
 * @p base, folding into @p acc. Models the portion of each SPEC
 * benchmark outside the DTT-targeted kernel (loads, ALU mix, hard-to-
 * predict branches) and thus sets the per-benchmark Amdahl floor.
 * Clobbers t0, t1, t2, t4, t5; @p acc must not be one of those.
 */
void emitMixer(isa::ProgramBuilder &b, Addr base, int elems,
               isa::Reg acc);

} // namespace dttsim::workloads
