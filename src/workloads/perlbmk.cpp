#include "workloads/workload.h"

/**
 * @file
 * perlbmk analogue (253.perlbmk): interpreter symbol table. Script
 * statements reference interned symbols whose *string values* are
 * rebound rarely (and often to the same string). Each reference needs
 * the value's hash/length digest.
 *
 * Baseline re-digests the referenced symbol's string (a byte loop)
 * at every reference. DTT caches digests, maintained by a handler
 * triggered on rebinding writes to the string storage.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kStrBytes = 16;    // bytes per symbol string (2 words)

/** Host digest over the symbol's two string words, mirrored by the
 *  emitted byte loop. */
std::int64_t
digestHost(const std::uint8_t *s)
{
    std::uint64_t h = 5381;
    for (int i = 0; i < kStrBytes; ++i)
        h = h * 33 + s[i];
    return static_cast<std::int64_t>(h);
}

class PerlbmkWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "perlbmk";
        i.specAnalogue = "253.perlbmk";
        i.kernelDesc = "symbol string digests recomputed per"
                       " interpreter reference";
        i.triggerDesc = "symbol string bytes (TSB), striped by symbol";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.35;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int W = 128 * p.scale;     // interned symbols
        const int S = 192 * p.scale;     // references per statement run
        const int T = p.iterations;
        const int U = 6;                 // rebinding byte-writes

        Rng rng(p.seed);

        std::vector<std::uint8_t> strings(
            static_cast<std::size_t>(W * kStrBytes));
        for (auto &c : strings)
            c = static_cast<std::uint8_t>('a' + rng.below(26));
        std::vector<std::int64_t> digest(static_cast<std::size_t>(W));
        for (int w = 0; w < W; ++w)
            digest[size_t(w)] =
                digestHost(&strings[size_t(w * kStrBytes)]);
        std::vector<std::int64_t> refs(static_cast<std::size_t>(S));
        for (auto &v : refs)
            v = rng.range(0, W - 1);

        std::vector<std::int64_t> mirror(strings.begin(),
                                         strings.end());
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return static_cast<std::int64_t>('a' + rng.below(26));
            });

        ProgramBuilder b;
        Addr str_a = b.bytes("strings", strings);
        Addr dig_a = b.quads("digest", digest);
        Addr refs_a = b.quads("refs", refs);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 3584 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label redigest = b.newLabel();   // a0 = symbol id

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- symbol rebinds (byte writes into string storage) --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);            // byte index in string pool
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.addi(t5, t2, std::int64_t(str_a));
            if (!dtt) {
                b.sb(t3, t5, 0);
            } else {
                b.srli(t4, t2, 4);      // symbol = byte / 16
                b.andi(t4, t4, kStripes - 1);
                Label l1 = b.newLabel(), l2 = b.newLabel();
                Label l3 = b.newLabel(), done = b.newLabel();
                b.bnez(t4, l1);
                b.tsb(t3, t5, 0, 0);
                b.j(done);
                b.bind(l1);
                b.li(t6, 1);
                b.bne(t4, t6, l2);
                b.tsb(t3, t5, 0, 1);
                b.j(done);
                b.bind(l2);
                b.li(t6, 2);
                b.bne(t4, t6, l3);
                b.tsb(t3, t5, 0, 2);
                b.j(done);
                b.bind(l3);
                b.tsb(t3, t5, 0, 3);
                b.bind(done);
            }
        });

        if (dtt) {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- interpret: every reference needs the symbol's digest --
        b.li(s6, 0);
        b.la(s7, refs_a);
        b.li(t1, S);
        b.loop(t0, t1, [&] {
            b.ld(a0, s7, 0);            // symbol id
            if (!dtt) {
                b.call(redigest);       // recompute at each reference
                b.mv(t5, a1);
            } else {
                b.slli(t5, a0, 3);
                b.addi(t5, t5, std::int64_t(dig_a));
                b.ld(t5, t5, 0);        // cached digest
            }
            b.add(s6, s6, t5);
            b.addi(s7, s7, 8);
        });

        if (!dtt) {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- digest subroutine: a0 = symbol id, digest in a1 (also
        //    stored to the cache) --
        b.bind(redigest);
        b.slli(t6, a0, 4);              // byte base
        b.addi(t6, t6, std::int64_t(str_a));
        b.li(a1, 5381);
        b.li(t7, 33);
        b.li(t8, kStrBytes);
        Label byte_loop = b.here();
        b.lb(t4, t6, 0);
        b.mul(a1, a1, t7);
        b.add(a1, a1, t4);
        b.addi(t6, t6, 1);
        b.addi(t8, t8, -1);
        b.bnez(t8, byte_loop);
        b.slli(t6, a0, 3);
        b.addi(t6, t6, std::int64_t(dig_a));
        b.sd(a1, t6, 0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &strings[byte]; re-digest that symbol.
            b.bind(handler);
            b.li(t0, std::int64_t(str_a));
            b.sub(t0, a0, t0);
            b.srli(a0, t0, 4);          // symbol id
            b.call(redigest);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
perlbmkWorkload()
{
    static PerlbmkWorkload w;
    return w;
}

} // namespace dttsim::workloads
