#include "workloads/workload.h"

/**
 * @file
 * gzip analogue (164.gzip): maintains a hash table over dictionary
 * entries; the deflate-style matcher consumes the hashes. Dictionary
 * entries are rewritten each iteration, usually with identical
 * content. Baseline rehashes the full dictionary every iteration;
 * DTT rehashes only entries whose content changed.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;

/** The (shared) hash function applied to one dictionary word. */
std::int64_t
hashHost(std::int64_t v)
{
    auto h = static_cast<std::uint64_t>(v);
    for (int r = 0; r < 4; ++r) {
        h ^= h >> 13;
        h *= 0x9e3779b1ull;
        h ^= h << 7;
    }
    return static_cast<std::int64_t>(h);
}

class GzipWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "gzip";
        i.specAnalogue = "164.gzip";
        i.kernelDesc = "hash-chain maintenance over a dictionary of"
                       " mostly-unchanged entries";
        i.triggerDesc = "dictionary words, striped by entry group";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.3;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int D = 256 * p.scale;     // dictionary entries
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<std::int64_t> dict(static_cast<std::size_t>(D));
        for (auto &v : dict)
            v = static_cast<std::int64_t>(rng.next());
        std::vector<std::int64_t> hash_out(dict.size());
        for (std::size_t i = 0; i < dict.size(); ++i)
            hash_out[i] = hashHost(dict[i]);

        std::vector<std::int64_t> mirror = dict;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return static_cast<std::int64_t>(rng.next());
            });

        ProgramBuilder b;
        Addr dict_a = b.quads("dict", dict);
        Addr hash_a = b.quads("hashOut", hash_out);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 5120 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label rehash = b.newLabel();     // a0 = entry index

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- dictionary updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(dict_a));
            b.andi(t4, t2, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            // -- rehash the whole dictionary (redundant) --
            b.li(s7, D);
            b.li(s6, 0);
            Label again = b.here();
            b.mv(a0, s6);
            b.call(rehash);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- matcher pass: consume every 4th hash --
        b.li(s6, 0);
        b.la(t2, hash_a);
        b.li(t1, D / 4);
        b.loop(t0, t1, [&] {
            b.ld(t4, t2, 0);
            b.xor_(s6, s6, t4);
            b.addi(t2, t2, 32);
        });

        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- rehash subroutine: a0 = entry index --
        b.bind(rehash);
        b.slli(t0, a0, 3);
        b.addi(t1, t0, std::int64_t(dict_a));
        b.ld(t2, t1, 0);                  // entry
        b.li(t3, 0x9e3779b1);
        for (int r = 0; r < 4; ++r) {
            b.srli(t4, t2, 13);
            b.xor_(t2, t2, t4);
            b.mul(t2, t2, t3);
            b.slli(t4, t2, 7);
            b.xor_(t2, t2, t4);
        }
        b.addi(t1, t0, std::int64_t(hash_a));
        b.sd(t2, t1, 0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &dict[k]; rehash entry k.
            b.bind(handler);
            b.li(t0, std::int64_t(dict_a));
            b.sub(t0, a0, t0);
            b.srli(a0, t0, 3);
            b.call(rehash);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
gzipWorkload()
{
    static GzipWorkload w;
    return w;
}

} // namespace dttsim::workloads
