#pragma once

/**
 * @file
 * SPEC-like workload framework. Each workload reproduces the hot
 * kernel that the paper's DTT transformation targets in one SPEC
 * CPU2000 C benchmark, and can build itself in two variants:
 *
 *  - Baseline: the original form that recomputes results every outer
 *    iteration (the redundant computation the paper measures);
 *  - Dtt: the data-triggered-threads form, where updates to the
 *    trigger data use triggering stores, handlers maintain the
 *    results incrementally on spare contexts, and the main thread
 *    consumes them behind TWAIT fences.
 *
 * Both variants write an identical 64-bit checksum to the data symbol
 * "result" before HALT, which the test suite uses as the equivalence
 * oracle (all aggregation is integer/fixed-point for exactness).
 *
 * Inputs are generated host-side by a deterministic RNG: data arrays
 * plus a precomputed *update schedule* (which elements are written
 * each outer iteration, and with what values). The updateRate
 * parameter controls the fraction of scheduled writes that actually
 * change the value — the rest are silent stores, the redundancy DTT
 * exploits.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"
#include "mem/memory.h"

namespace dttsim::workloads {

/** Which form of the kernel to build. */
enum class Variant { Baseline, Dtt };

/** Generation knobs common to all workloads. */
struct WorkloadParams
{
    std::uint64_t seed = 12345;

    /** Size multiplier (1 = default working set). */
    int scale = 1;

    /**
     * Fraction of scheduled trigger-data writes that truly change the
     * value (the rest are silent). Negative = workload default,
     * calibrated to the paper's per-benchmark behaviour.
     */
    double updateRate = -1.0;

    /** Outer iterations. Negative = workload default. */
    int iterations = -1;
};

/** Static description of a workload (Table 2 rows). */
struct WorkloadInfo
{
    std::string name;
    std::string specAnalogue;
    std::string kernelDesc;
    std::string triggerDesc;
    int staticTriggers = 0;       ///< trigger ids used (stripes)
    double defaultUpdateRate = 0.1;
    int defaultIterations = 0;
};

/** Abstract workload: knows how to build both program variants. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual WorkloadInfo info() const = 0;

    /** Build the program for @p variant with @p params. */
    virtual isa::Program build(Variant variant,
                               const WorkloadParams &params) const = 0;

  protected:
    /** Resolve defaulted params against info(). */
    WorkloadParams
    resolve(const WorkloadParams &params) const
    {
        WorkloadParams p = params;
        WorkloadInfo i = info();
        if (p.updateRate < 0)
            p.updateRate = i.defaultUpdateRate;
        if (p.iterations < 0)
            p.iterations = i.defaultIterations;
        if (p.scale < 1)
            p.scale = 1;
        return p;
    }
};

// One accessor per workload (defined in its own translation unit).
const Workload &mcfWorkload();
const Workload &artWorkload();
const Workload &equakeWorkload();
const Workload &bzip2Workload();
const Workload &gzipWorkload();
const Workload &twolfWorkload();
const Workload &vprWorkload();
const Workload &parserWorkload();
const Workload &ammpWorkload();
const Workload &gccWorkload();
const Workload &craftyWorkload();
const Workload &perlbmkWorkload();
const Workload &gapWorkload();
const Workload &vortexWorkload();
const Workload &mesaWorkload();

/** All workloads, in the paper's presentation order. */
const std::vector<const Workload *> &allWorkloads();

/** Find by name; fatal() if unknown. */
const Workload &findWorkload(const std::string &name);

/** Read the 64-bit checksum a finished program left at "result". */
std::uint64_t resultChecksum(const isa::Program &prog,
                             const mem::Memory &memory);

} // namespace dttsim::workloads
