#include "workloads/workload.h"

/**
 * @file
 * parser analogue (197.parser): dictionary lookup cost. A token
 * stream references dictionary words; each reference needs the word's
 * link cost, a pure function of its definition. Definitions rarely
 * change.
 *
 * Baseline recomputes the cost inline at every token reference (the
 * per-occurrence redundancy). DTT keeps a memo table maintained by a
 * handler triggered on definition writes; the token loop becomes a
 * plain lookup.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr std::int64_t kMixConst = 0x9e3779b97f4a7c15ll;

/** Link-cost function, mirrored exactly by the emitted sequence. */
std::int64_t
costHost(std::int64_t def)
{
    auto c = static_cast<std::uint64_t>(def);
    for (int round = 0; round < 3; ++round) {
        c ^= c >> 11;
        c *= static_cast<std::uint64_t>(kMixConst);
        c ^= c >> 29;
    }
    return static_cast<std::int64_t>(c & 0xffff);
}

class ParserWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "parser";
        i.specAnalogue = "197.parser";
        i.kernelDesc = "per-token dictionary link-cost computation"
                       " over rarely-changing definitions";
        i.triggerDesc = "dictionary definitions, striped by word id";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.3;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int W = 256 * p.scale;     // dictionary words
        const int S = 512 * p.scale;     // tokens per sentence batch
        const int T = p.iterations;
        const int U = 4;

        Rng rng(p.seed);

        std::vector<std::int64_t> def(static_cast<std::size_t>(W));
        for (auto &v : def)
            v = static_cast<std::int64_t>(rng.next());
        std::vector<std::int64_t> word_cost(def.size());
        for (std::size_t i = 0; i < def.size(); ++i)
            word_cost[i] = costHost(def[i]);
        std::vector<std::int64_t> tokens(static_cast<std::size_t>(S));
        for (auto &v : tokens)
            v = rng.range(0, W - 1);

        std::vector<std::int64_t> mirror = def;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return static_cast<std::int64_t>(rng.next());
            });

        ProgramBuilder b;
        Addr def_a = b.quads("def", def);
        Addr cost_a = b.quads("wordCost", word_cost);
        Addr tok_a = b.quads("tokens", tokens);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 4096 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();

        // Emit the cost function on value in t7 -> result in t7;
        // clobbers t8. Must mirror costHost() exactly.
        auto emit_cost = [&] {
            for (int round = 0; round < 3; ++round) {
                b.srli(t8, t7, 11);
                b.xor_(t7, t7, t8);
                b.li(t8, kMixConst);
                b.mul(t7, t7, t8);
                b.srli(t8, t7, 29);
                b.xor_(t7, t7, t8);
            }
            b.andi(t7, t7, 0xffff);
        };

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- definition updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(def_a));
            b.andi(t4, t2, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (dtt) {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- parse the sentence batch --
        b.li(s6, 0);
        b.la(t2, tok_a);
        b.li(t1, S);
        b.loop(t0, t1, [&] {
            b.ld(t5, t2, 0);                 // word id
            b.slli(t5, t5, 3);
            if (!dtt) {
                // recompute the cost at every occurrence (redundant)
                b.addi(t5, t5, std::int64_t(def_a));
                b.ld(t7, t5, 0);
                emit_cost();
            } else {
                // memo lookup maintained by the DTT handler
                b.addi(t5, t5, std::int64_t(cost_a));
                b.ld(t7, t5, 0);
            }
            b.add(s6, s6, t7);
            b.addi(t2, t2, 8);
        });

        // -- rest-of-program pass (shared) --
        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        if (dtt) {
            // Handler: a0 = &def[w]; refresh wordCost[w].
            b.bind(handler);
            b.ld(t7, a0, 0);
            emit_cost();
            b.li(t0, std::int64_t(def_a));
            b.sub(t0, a0, t0);
            b.addi(t0, t0, std::int64_t(cost_a));
            b.sd(t7, t0, 0);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
parserWorkload()
{
    static ParserWorkload w;
    return w;
}

} // namespace dttsim::workloads
