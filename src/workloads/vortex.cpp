#include "workloads/workload.h"

/**
 * @file
 * vortex analogue (255.vortex): object-oriented database. Objects
 * carry 4 fields; the store maintains a packed index key per object,
 * derived from its fields. Transactions rewrite fields (frequently
 * with the value already present); queries scan the key index.
 *
 * Baseline rebuilds every object's key each transaction batch. DTT
 * triggers on field writes; the handler re-derives only the touched
 * object's key. The query scan and the transaction bookkeeping are
 * shared.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kFields = 4;

/** Host key derivation, mirrored by the emitted sequence. */
std::int64_t
keyHost(const std::int64_t *fields)
{
    std::uint64_t k = 0;
    for (int f = 0; f < kFields; ++f) {
        k = (k << 13) | (k >> 51);
        k ^= static_cast<std::uint64_t>(fields[f]) * 0x9e3779b1ull;
    }
    return static_cast<std::int64_t>(k);
}

class VortexWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "vortex";
        i.specAnalogue = "255.vortex";
        i.kernelDesc = "object index-key maintenance under"
                       " transactional field updates";
        i.triggerDesc = "object fields, striped by object id mod 4";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.3;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int O = 256 * p.scale;     // objects
        const int N = O * kFields;       // field cells
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<std::int64_t> fields(static_cast<std::size_t>(N));
        for (auto &v : fields)
            v = rng.range(0, 9999);
        std::vector<std::int64_t> keys(static_cast<std::size_t>(O));
        for (int o = 0; o < O; ++o)
            keys[size_t(o)] = keyHost(&fields[size_t(o * kFields)]);

        std::vector<std::int64_t> mirror = fields;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate,
            [&](std::int64_t) { return rng.range(0, 9999); });

        ProgramBuilder b;
        Addr fld_a = b.quads("fields", fields);
        Addr key_a = b.quads("keys", keys);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 3072 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label derive = b.newLabel();     // a0 = object id, key in a1

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- transactional field updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);             // field cell index
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(fld_a));
            b.srli(t4, t2, 2);           // object = cell / kFields
            b.andi(t4, t4, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            // -- rebuild every key (redundant) --
            b.li(s7, O);
            b.li(s6, 0);
            Label again = b.here();
            b.mv(a0, s6);
            b.call(derive);
            b.slli(t0, s6, 3);
            b.addi(t0, t0, std::int64_t(key_a));
            b.sd(a1, t0, 0);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- query scan: count keys below a probe, fold extremes --
        b.li(s6, 0);
        b.la(t2, key_a);
        b.li(t1, O);
        b.li(t3, 0);
        b.loop(t0, t1, [&] {
            b.ld(t4, t2, 0);
            b.slt(t5, t4, t3);
            b.add(s6, s6, t5);
            b.xor_(t3, t3, t4);
            b.addi(t2, t2, 8);
        });
        b.add(s6, s6, t3);

        if (!dtt) {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- key derivation: a0 = object id, key in a1 --
        b.bind(derive);
        b.slli(t6, a0, 2 + 3);           // object * kFields * 8
        b.addi(t6, t6, std::int64_t(fld_a));
        b.li(a1, 0);
        b.li(t8, 0x9e3779b1);
        for (int f = 0; f < kFields; ++f) {
            b.slli(t7, a1, 13);
            b.srli(a1, a1, 51);
            b.or_(a1, a1, t7);           // rotl(k, 13)
            b.ld(t7, t6, 8 * f);
            b.mul(t7, t7, t8);
            b.xor_(a1, a1, t7);
        }
        b.ret();

        if (dtt) {
            // Handler: a0 = &fields[cell]; re-derive its object key.
            b.bind(handler);
            b.li(t0, std::int64_t(fld_a));
            b.sub(t0, a0, t0);
            b.srli(a0, t0, 2 + 3);       // object id
            b.call(derive);
            b.slli(t0, a0, 3);
            b.addi(t0, t0, std::int64_t(key_a));
            b.sd(a1, t0, 0);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
vortexWorkload()
{
    static VortexWorkload w;
    return w;
}

} // namespace dttsim::workloads
