#include "workloads/workload.h"

/**
 * @file
 * vpr analogue (175.vpr): placement with a floating-point wiring-cost
 * model. Same stripe-partitioned net structure as twolf, but the net
 * cost is sqrt(span^2 + 1) in double precision, converted to fixed
 * point so that delta maintenance stays exact. Baseline re-costs all
 * nets per iteration; DTT re-costs only nets of moved cells.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kPins = 4;
constexpr int kNetsPerCell = 4;

class VprWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "vpr";
        i.specAnalogue = "175.vpr";
        i.kernelDesc = "FP wiring-cost maintenance under local"
                       " placement moves";
        i.triggerDesc = "cell positions, striped by cell id mod 4";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.35;
        i.defaultIterations = 15;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int C = 512 * p.scale;
        const int Nn = 256 * p.scale;
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<std::int64_t> pos(static_cast<std::size_t>(C));
        for (auto &v : pos)
            v = rng.range(0, 1023);

        std::vector<std::int64_t> net_pins(
            static_cast<std::size_t>(Nn * kPins));
        std::vector<std::int64_t> cell_nets(
            static_cast<std::size_t>(C * kNetsPerCell), -1);
        {
            std::vector<int> fill(static_cast<std::size_t>(C), 0);
            auto contains = [&](int cell, int n) {
                for (int s = 0; s < fill[size_t(cell)]; ++s)
                    if (cell_nets[size_t(cell * kNetsPerCell + s)] == n)
                        return true;
                return false;
            };
            for (int n = 0; n < Nn; ++n) {
                int g = n % kStripes;
                for (int q = 0; q < kPins; ++q) {
                    int cell;
                    do {
                        cell = static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(C / kStripes)))
                            * kStripes + g;
                    } while (fill[size_t(cell)] >= kNetsPerCell
                             && !contains(cell, n));
                    if (!contains(cell, n))
                        cell_nets[size_t(cell * kNetsPerCell
                                         + fill[size_t(cell)]++)] = n;
                    net_pins[size_t(n * kPins + q)] = cell;
                }
            }
        }

        // FP cost model, mirrored exactly in the ISA subroutine:
        // span = hi - lo; cost = (int64) (sqrt(span*span + 1) * 256).
        auto net_cost_host = [&](int n) {
            std::int64_t lo = 1 << 20, hi = -1;
            for (int q = 0; q < kPins; ++q) {
                std::int64_t v = pos[static_cast<std::size_t>(
                    net_pins[size_t(n * kPins + q)])];
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            double span = static_cast<double>(hi - lo);
            return static_cast<std::int64_t>(
                __builtin_sqrt(span * span + 1.0) * 256.0);
        };
        std::vector<std::int64_t> net_cost(static_cast<std::size_t>(Nn));
        std::vector<std::int64_t> stripe_cost(kStripes, 0);
        for (int n = 0; n < Nn; ++n) {
            net_cost[size_t(n)] = net_cost_host(n);
            stripe_cost[size_t(n % kStripes)] += net_cost[size_t(n)];
        }

        std::vector<std::int64_t> mirror = pos;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate,
            [&](std::int64_t) { return rng.range(0, 1023); });

        ProgramBuilder b;
        Addr pos_a = b.quads("pos", pos);
        Addr pins_a = b.quads("netPins", net_pins);
        Addr cnets_a = b.quads("cellNets", cell_nets);
        Addr ncost_a = b.quads("netCost", net_cost);
        Addr scost_a = b.quads("stripeCost", stripe_cost);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 6144 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label netcost = b.newLabel();

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(pos_a));
            b.andi(t4, t2, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            b.li(s7, Nn);
            b.li(s6, 0);
            b.li(s8, 0);
            Label again = b.here();
            b.mv(a0, s6);
            b.call(netcost);
            b.add(s8, s8, a1);
            b.slli(t0, s6, 3);
            b.addi(t0, t0, std::int64_t(ncost_a));
            b.sd(a1, t0, 0);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s6, 0);
            emitMixer(b, mixer_a, mixer_elems, s6);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
            b.li(s8, 0);
            b.la(t2, scost_a);
            for (int s = 0; s < kStripes; ++s) {
                b.ld(t3, t2, 8 * s);
                b.add(s8, s8, t3);
            }
        }

        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s6, 0);
            emitMixer(b, mixer_a, mixer_elems, s6);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s8);
        b.add(s0, s0, s6);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- FP net cost subroutine: a0 = net index, cost in a1 --
        b.bind(netcost);
        b.slli(t0, a0, 3 + 2);
        b.addi(t0, t0, std::int64_t(pins_a));
        b.li(t2, 1 << 20);
        b.li(t3, -1);
        for (int q = 0; q < kPins; ++q) {
            b.ld(t4, t0, 8 * q);
            b.slli(t4, t4, 3);
            b.addi(t4, t4, std::int64_t(pos_a));
            b.ld(t4, t4, 0);
            Label no_lo = b.newLabel(), no_hi = b.newLabel();
            b.bge(t4, t2, no_lo);
            b.mv(t2, t4);
            b.bind(no_lo);
            b.bge(t3, t4, no_hi);
            b.mv(t3, t4);
            b.bind(no_hi);
        }
        b.sub(t4, t3, t2);                 // span
        b.fcvtdw(ft0, t4);
        b.fmul(ft0, ft0, ft0);
        b.fli(ft1, 1.0);
        b.fadd(ft0, ft0, ft1);
        b.fsqrt(ft0, ft0);
        b.fli(ft1, 256.0);
        b.fmul(ft0, ft0, ft1);
        b.fcvtwd(a1, ft0);
        b.ret();

        if (dtt) {
            b.bind(handler);
            b.li(t0, std::int64_t(pos_a));
            b.sub(t0, a0, t0);
            b.srli(s1, t0, 3);
            b.andi(s2, s1, kStripes - 1);
            b.slli(s3, s1, 3 + 2);
            b.addi(s3, s3, std::int64_t(cnets_a));
            b.li(s4, 0);
            Label next = b.newLabel();
            Label top = b.here();
            b.ld(s5, s3, 0);
            b.blt(s5, zero, next);
            b.mv(a0, s5);
            b.call(netcost);
            b.slli(t0, s5, 3);
            b.addi(t0, t0, std::int64_t(ncost_a));
            b.ld(t1, t0, 0);
            b.sd(a1, t0, 0);
            b.sub(t1, a1, t1);
            b.slli(t2, s2, 3);
            b.addi(t2, t2, std::int64_t(scost_a));
            b.ld(t3, t2, 0);
            b.add(t3, t3, t1);
            b.sd(t3, t2, 0);
            b.bind(next);
            b.addi(s3, s3, 8);
            b.addi(s4, s4, 1);
            b.li(t0, kNetsPerCell);
            b.blt(s4, t0, top);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
vprWorkload()
{
    static VprWorkload w;
    return w;
}

} // namespace dttsim::workloads
