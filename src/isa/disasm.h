#pragma once

/**
 * @file
 * Disassembler: renders decoded instructions back to assembly text,
 * used by traces, error messages and the assembler round-trip tests.
 */

#include <string>

#include "isa/inst.h"
#include "isa/program.h"

namespace dttsim::isa {

/** Render one instruction as assembly text. */
std::string disassemble(const Inst &inst);

/** Render a whole program, one "pc: text" line per instruction. */
std::string disassemble(const Program &prog);

} // namespace dttsim::isa
