#include "isa/disasm.h"

#include <sstream>

#include "common/log.h"

namespace dttsim::isa {

namespace {

std::string
xr(int idx)
{
    return "x" + std::to_string(idx);
}

std::string
fr(int idx)
{
    return "f" + std::to_string(idx);
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    std::ostringstream os;
    os << info.mnemonic;
    auto sep = [&os, first = true]() mutable -> std::ostream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };
    bool fp_ls = inst.op == Opcode::FLD || inst.op == Opcode::FSD;
    switch (info.format) {
      case Format::R:
        sep() << xr(inst.rd);
        sep() << xr(inst.rs1);
        sep() << xr(inst.rs2);
        break;
      case Format::FR:
        sep() << fr(inst.rd);
        sep() << fr(inst.rs1);
        sep() << fr(inst.rs2);
        break;
      case Format::FR1:
        sep() << fr(inst.rd);
        sep() << fr(inst.rs1);
        break;
      case Format::FCvtFI:
        sep() << fr(inst.rd);
        sep() << xr(inst.rs1);
        break;
      case Format::FCvtIF:
        sep() << xr(inst.rd);
        sep() << fr(inst.rs1);
        break;
      case Format::FCmp:
        sep() << xr(inst.rd);
        sep() << fr(inst.rs1);
        sep() << fr(inst.rs2);
        break;
      case Format::I:
      case Format::JumpR:
        sep() << xr(inst.rd);
        sep() << xr(inst.rs1);
        sep() << inst.imm;
        break;
      case Format::LI:
        sep() << xr(inst.rd);
        sep() << inst.imm;
        break;
      case Format::FLI:
        sep() << fr(inst.rd);
        sep() << inst.fimm;
        break;
      case Format::Load:
        sep() << (fp_ls ? fr(inst.rd) : xr(inst.rd));
        sep() << inst.imm << "(" << xr(inst.rs1) << ")";
        break;
      case Format::Store:
        sep() << (fp_ls ? fr(inst.rs2) : xr(inst.rs2));
        sep() << inst.imm << "(" << xr(inst.rs1) << ")";
        break;
      case Format::TStore:
        sep() << xr(inst.rs2);
        sep() << inst.imm << "(" << xr(inst.rs1) << ")";
        sep() << inst.trig;
        break;
      case Format::Branch:
        sep() << xr(inst.rs1);
        sep() << xr(inst.rs2);
        sep() << inst.imm;
        break;
      case Format::Jump:
        sep() << xr(inst.rd);
        sep() << inst.imm;
        break;
      case Format::TReg:
        sep() << inst.trig;
        sep() << inst.imm;
        break;
      case Format::Trig:
        sep() << inst.trig;
        break;
      case Format::TChk:
        sep() << xr(inst.rd);
        sep() << inst.trig;
        break;
      case Format::None:
        break;
    }
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    // Invert the label map for annotation.
    std::ostringstream os;
    std::map<std::uint64_t, std::string> by_pc;
    for (const auto &[name, pc] : prog.labels())
        by_pc[pc] = name;
    for (std::uint64_t pc = 0; pc < prog.size(); ++pc) {
        auto it = by_pc.find(pc);
        if (it != by_pc.end())
            os << it->second << ":\n";
        os << "    " << pc << ": " << disassemble(prog.at(pc)) << "\n";
    }
    return os.str();
}

} // namespace dttsim::isa
