#pragma once

/**
 * @file
 * Decoded instruction representation. The simulator never binary-
 * encodes instructions; a program is a vector of Inst and the PC is an
 * index into that vector (one "slot" per instruction).
 */

#include <cstdint>

#include "common/types.h"
#include "isa/opcodes.h"

namespace dttsim::isa {

/**
 * One decoded instruction. Field meaning depends on the opcode's
 * Format:
 *  - rd/rs1/rs2 index the integer or FP register file (0..31); which
 *    file is implied by the opcode.
 *  - imm holds the immediate, the load/store displacement, or the
 *    absolute branch/jump target (instruction index, resolved by the
 *    assembler/builder).
 *  - trig is the static trigger id for the DTT extension ops.
 *  - fimm is the literal for FLI.
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    TriggerId trig = invalidTrigger;
    std::int64_t imm = 0;
    double fimm = 0.0;
};

} // namespace dttsim::isa
