#pragma once

/**
 * @file
 * Two-pass text assembler for the dttsim ISA. Supports `.text` /
 * `.data` sections, labels, `.quad` / `.word` / `.byte` / `.double` /
 * `.space` data directives, `#`-comments, and symbolic operands for
 * branch targets and `li` (which resolves data symbols to addresses
 * and text labels to instruction indices).
 *
 * Example:
 * @code
 *     .text
 * main:
 *     li    a0, arr
 *     ld    x5, 0(a0)
 *     tsd   x5, 8(a0), 0
 *     treg  0, handler
 *     twait 0
 *     halt
 * handler:
 *     tret
 *     .data
 * arr: .quad 1, 2, 3
 * @endcode
 */

#include <string>

#include "isa/program.h"

namespace dttsim::isa {

/** Thrown (via fatal()) on malformed assembly; see log.h. */

/**
 * Assemble @p source into a Program. The entry point is the `main`
 * label when present, otherwise instruction 0.
 */
Program assemble(const std::string &source);

} // namespace dttsim::isa
