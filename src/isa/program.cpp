#include "isa/program.h"

#include "common/log.h"

namespace dttsim::isa {

const Inst &
Program::at(std::uint64_t pc) const
{
    if (pc >= text_.size())
        panic("PC 0x%llx outside program text (size %zu)",
              static_cast<unsigned long long>(pc), text_.size());
    return text_[pc];
}

void
Program::defineLabel(const std::string &name, std::uint64_t pc)
{
    auto [it, inserted] = textSyms_.emplace(name, pc);
    if (!inserted)
        fatal("duplicate text label '%s'", name.c_str());
}

std::uint64_t
Program::label(const std::string &name) const
{
    auto it = textSyms_.find(name);
    if (it == textSyms_.end())
        fatal("unknown text label '%s'", name.c_str());
    return it->second;
}

bool
Program::hasLabel(const std::string &name) const
{
    return textSyms_.count(name) != 0;
}

Addr
Program::allocData(const std::string &name, std::uint64_t bytes)
{
    // Named objects are 8-byte aligned; anonymous continuations
    // (e.g. a second `.byte` line extending an array) stay
    // contiguous with the previous chunk.
    if (!name.empty())
        nextData_ = (nextData_ + 7) & ~Addr(7);
    Addr base = nextData_;
    nextData_ += bytes;
    if (!name.empty()) {
        auto [it, inserted] = dataSyms_.emplace(name, base);
        if (!inserted)
            fatal("duplicate data symbol '%s'", name.c_str());
    }
    return base;
}

Addr
Program::addData(const std::string &name,
                 const std::vector<std::uint8_t> &bytes)
{
    Addr base = allocData(name, bytes.size());
    chunks_.push_back(DataChunk{base, bytes});
    return base;
}

Addr
Program::dataSymbol(const std::string &name) const
{
    auto it = dataSyms_.find(name);
    if (it == dataSyms_.end())
        fatal("unknown data symbol '%s'", name.c_str());
    return it->second;
}

bool
Program::hasDataSymbol(const std::string &name) const
{
    return dataSyms_.count(name) != 0;
}

void
Program::noteTrigger(TriggerId t)
{
    if (t >= numTriggers_)
        numTriggers_ = t + 1;
}

} // namespace dttsim::isa
