#include "isa/builder.h"

#include <cstring>

#include "common/log.h"

namespace dttsim::isa {

Label
ProgramBuilder::newLabel()
{
    labelPc_.push_back(-1);
    return Label(static_cast<int>(labelPc_.size()) - 1);
}

void
ProgramBuilder::bind(Label &l)
{
    if (l.id_ < 0)
        l = newLabel();
    if (labelPc_[static_cast<std::size_t>(l.id_)] >= 0)
        panic("label %d bound twice", l.id_);
    labelPc_[static_cast<std::size_t>(l.id_)] =
        static_cast<std::int64_t>(prog_.size());
}

Label
ProgramBuilder::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
ProgramBuilder::bindNamed(const std::string &name)
{
    prog_.defineLabel(name, prog_.size());
}

Addr
ProgramBuilder::quads(const std::string &name,
                      const std::vector<std::int64_t> &vals)
{
    std::vector<std::uint8_t> b(vals.size() * 8);
    std::memcpy(b.data(), vals.data(), b.size());
    return prog_.addData(name, b);
}

Addr
ProgramBuilder::doubles(const std::string &name,
                        const std::vector<double> &vals)
{
    std::vector<std::uint8_t> b(vals.size() * 8);
    std::memcpy(b.data(), vals.data(), b.size());
    return prog_.addData(name, b);
}

Addr
ProgramBuilder::bytes(const std::string &name,
                      const std::vector<std::uint8_t> &vals)
{
    return prog_.addData(name, vals);
}

Addr
ProgramBuilder::space(const std::string &name, std::uint64_t size)
{
    return prog_.allocData(name, size);
}

void
ProgramBuilder::emit(const Inst &inst)
{
    if (taken_)
        panic("ProgramBuilder reused after take()");
    if (inst.rd >= 32 || inst.rs1 >= 32 || inst.rs2 >= 32)
        fatal("pc %llu: %s names register %d; register files have 32",
              static_cast<unsigned long long>(prog_.size()),
              mnemonic(inst.op),
              inst.rd >= 32 ? inst.rd
                            : (inst.rs1 >= 32 ? inst.rs1 : inst.rs2));
    switch (inst.op) {
      case Opcode::TREG:
      case Opcode::TUNREG:
      case Opcode::TSD:
      case Opcode::TSW:
      case Opcode::TSB:
      case Opcode::TWAIT:
      case Opcode::TCHK:
      case Opcode::TCLR:
        if (inst.trig < 0)
            fatal("pc %llu: %s uses negative trigger id %d",
                  static_cast<unsigned long long>(prog_.size()),
                  mnemonic(inst.op), inst.trig);
        break;
      default:
        break;
    }
    if (inst.trig != invalidTrigger)
        prog_.noteTrigger(inst.trig);
    prog_.append(inst);
}

void
ProgramBuilder::emitTarget(Inst inst, Label l)
{
    if (l.id_ < 0)
        panic("branch to default-constructed label; use newLabel()");
    std::uint64_t pc = prog_.size();
    emit(inst);
    fixups_.push_back(Fixup{pc, l.id_});
}

// Integer ALU -------------------------------------------------------

namespace {

Inst
rType(Opcode op, std::uint8_t rd, std::uint8_t a, std::uint8_t b)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = a;
    i.rs2 = b;
    return i;
}

Inst
iType(Opcode op, std::uint8_t rd, std::uint8_t a, std::int64_t imm)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = a;
    i.imm = imm;
    return i;
}

} // namespace

#define DTTSIM_R(NAME, OP) \
    void ProgramBuilder::NAME(Reg rd, Reg a, Reg b) \
    { emit(rType(Opcode::OP, rd.idx, a.idx, b.idx)); }

DTTSIM_R(add, ADD)
DTTSIM_R(sub, SUB)
DTTSIM_R(mul, MUL)
DTTSIM_R(div, DIV)
DTTSIM_R(rem, REM)
DTTSIM_R(and_, AND)
DTTSIM_R(or_, OR)
DTTSIM_R(xor_, XOR)
DTTSIM_R(sll, SLL)
DTTSIM_R(srl, SRL)
DTTSIM_R(sra, SRA)
DTTSIM_R(slt, SLT)
DTTSIM_R(sltu, SLTU)
#undef DTTSIM_R

#define DTTSIM_I(NAME, OP) \
    void ProgramBuilder::NAME(Reg rd, Reg a, std::int64_t imm) \
    { emit(iType(Opcode::OP, rd.idx, a.idx, imm)); }

DTTSIM_I(addi, ADDI)
DTTSIM_I(andi, ANDI)
DTTSIM_I(ori, ORI)
DTTSIM_I(xori, XORI)
DTTSIM_I(slli, SLLI)
DTTSIM_I(srli, SRLI)
DTTSIM_I(srai, SRAI)
DTTSIM_I(slti, SLTI)
#undef DTTSIM_I

void
ProgramBuilder::li(Reg rd, std::int64_t imm)
{
    Inst i;
    i.op = Opcode::LI;
    i.rd = rd.idx;
    i.imm = imm;
    emit(i);
}

// Memory -------------------------------------------------------------

#define DTTSIM_LOAD(NAME, OP, REGTYPE, FIELD) \
    void ProgramBuilder::NAME(REGTYPE rd, Reg base, std::int64_t off) \
    { \
        Inst i; \
        i.op = Opcode::OP; \
        i.FIELD = rd.idx; \
        i.rs1 = base.idx; \
        i.imm = off; \
        emit(i); \
    }

DTTSIM_LOAD(ld, LD, Reg, rd)
DTTSIM_LOAD(lw, LW, Reg, rd)
DTTSIM_LOAD(lb, LB, Reg, rd)
DTTSIM_LOAD(fld, FLD, FReg, rd)
#undef DTTSIM_LOAD

#define DTTSIM_STORE(NAME, OP, REGTYPE) \
    void ProgramBuilder::NAME(REGTYPE rs, Reg base, std::int64_t off) \
    { \
        Inst i; \
        i.op = Opcode::OP; \
        i.rs2 = rs.idx; \
        i.rs1 = base.idx; \
        i.imm = off; \
        emit(i); \
    }

DTTSIM_STORE(sd, SD, Reg)
DTTSIM_STORE(sw, SW, Reg)
DTTSIM_STORE(sb, SB, Reg)
DTTSIM_STORE(fsd, FSD, FReg)
#undef DTTSIM_STORE

// Floating point ------------------------------------------------------

void
ProgramBuilder::fli(FReg rd, double v)
{
    Inst i;
    i.op = Opcode::FLI;
    i.rd = rd.idx;
    i.fimm = v;
    emit(i);
}

#define DTTSIM_FR(NAME, OP) \
    void ProgramBuilder::NAME(FReg rd, FReg a, FReg b) \
    { emit(rType(Opcode::OP, rd.idx, a.idx, b.idx)); }

DTTSIM_FR(fadd, FADD)
DTTSIM_FR(fsub, FSUB)
DTTSIM_FR(fmul, FMUL)
DTTSIM_FR(fdiv, FDIV)
DTTSIM_FR(fmin, FMIN)
DTTSIM_FR(fmax, FMAX)
#undef DTTSIM_FR

void
ProgramBuilder::fsqrt(FReg rd, FReg a)
{
    emit(rType(Opcode::FSQRT, rd.idx, a.idx, 0));
}

void
ProgramBuilder::fneg(FReg rd, FReg a)
{
    emit(rType(Opcode::FNEG, rd.idx, a.idx, 0));
}

void
ProgramBuilder::fabs_(FReg rd, FReg a)
{
    emit(rType(Opcode::FABS, rd.idx, a.idx, 0));
}

void
ProgramBuilder::fabs_impl(FReg rd, FReg a)
{
    // fmv lowers to fabs of |a|? No: implement as fadd with zero-free
    // move: use FABS only when a >= 0 is unknown, so emit FADD rd, a, 0?
    // Simplest exact move: FMIN rd, a, a.
    emit(rType(Opcode::FMIN, rd.idx, a.idx, a.idx));
}

void
ProgramBuilder::fcvtdw(FReg rd, Reg a)
{
    emit(rType(Opcode::FCVTDW, rd.idx, a.idx, 0));
}

void
ProgramBuilder::fcvtwd(Reg rd, FReg a)
{
    emit(rType(Opcode::FCVTWD, rd.idx, a.idx, 0));
}

#define DTTSIM_FCMP(NAME, OP) \
    void ProgramBuilder::NAME(Reg rd, FReg a, FReg b) \
    { emit(rType(Opcode::OP, rd.idx, a.idx, b.idx)); }

DTTSIM_FCMP(feq, FEQ)
DTTSIM_FCMP(flt, FLT)
DTTSIM_FCMP(fle, FLE)
#undef DTTSIM_FCMP

// Control flow --------------------------------------------------------

#define DTTSIM_BR(NAME, OP) \
    void ProgramBuilder::NAME(Reg a, Reg b, Label l) \
    { \
        Inst i; \
        i.op = Opcode::OP; \
        i.rs1 = a.idx; \
        i.rs2 = b.idx; \
        emitTarget(i, l); \
    }

DTTSIM_BR(beq, BEQ)
DTTSIM_BR(bne, BNE)
DTTSIM_BR(blt, BLT)
DTTSIM_BR(bge, BGE)
DTTSIM_BR(bltu, BLTU)
DTTSIM_BR(bgeu, BGEU)
#undef DTTSIM_BR

void
ProgramBuilder::jal(Reg rd, Label l)
{
    Inst i;
    i.op = Opcode::JAL;
    i.rd = rd.idx;
    emitTarget(i, l);
}

void
ProgramBuilder::jalr(Reg rd, Reg base, std::int64_t off)
{
    emit(iType(Opcode::JALR, rd.idx, base.idx, off));
}

void
ProgramBuilder::nop()
{
    Inst i;
    i.op = Opcode::NOP;
    emit(i);
}

void
ProgramBuilder::halt()
{
    Inst i;
    i.op = Opcode::HALT;
    emit(i);
}

// DTT extension -------------------------------------------------------

void
ProgramBuilder::treg(TriggerId t, Label entry)
{
    Inst i;
    i.op = Opcode::TREG;
    i.trig = t;
    emitTarget(i, entry);
}

void
ProgramBuilder::tunreg(TriggerId t)
{
    Inst i;
    i.op = Opcode::TUNREG;
    i.trig = t;
    emit(i);
}

#define DTTSIM_TSTORE(NAME, OP) \
    void ProgramBuilder::NAME(Reg rs, Reg base, std::int64_t off, \
                              TriggerId t) \
    { \
        Inst i; \
        i.op = Opcode::OP; \
        i.rs2 = rs.idx; \
        i.rs1 = base.idx; \
        i.imm = off; \
        i.trig = t; \
        emit(i); \
    }

DTTSIM_TSTORE(tsd, TSD)
DTTSIM_TSTORE(tsw, TSW)
DTTSIM_TSTORE(tsb, TSB)
#undef DTTSIM_TSTORE

void
ProgramBuilder::twait(TriggerId t)
{
    Inst i;
    i.op = Opcode::TWAIT;
    i.trig = t;
    emit(i);
}

void
ProgramBuilder::tchk(Reg rd, TriggerId t)
{
    Inst i;
    i.op = Opcode::TCHK;
    i.rd = rd.idx;
    i.trig = t;
    emit(i);
}

void
ProgramBuilder::tclr(TriggerId t)
{
    Inst i;
    i.op = Opcode::TCLR;
    i.trig = t;
    emit(i);
}

void
ProgramBuilder::tret()
{
    Inst i;
    i.op = Opcode::TRET;
    emit(i);
}

// Structured helpers --------------------------------------------------

void
ProgramBuilder::loop(Reg idx, Reg bound, const std::function<void()> &body)
{
    li(idx, 0);
    Label done = newLabel();
    bge(idx, bound, done);
    Label top = here();
    body();
    addi(idx, idx, 1);
    blt(idx, bound, top);
    bind(done);
}

void
ProgramBuilder::loop(Reg idx, std::int64_t bound, Reg scratch,
                     const std::function<void()> &body)
{
    li(scratch, bound);
    loop(idx, scratch, body);
}

void
ProgramBuilder::loop(Reg idx, std::int64_t bound,
                     const std::function<void()> &body)
{
    loop(idx, bound, Reg{4}, body);
}

Program
ProgramBuilder::take()
{
    for (const auto &f : fixups_) {
        std::int64_t target = labelPc_[static_cast<std::size_t>(f.labelId)];
        if (target < 0)
            panic("label %d referenced but never bound", f.labelId);
        if (target >= static_cast<std::int64_t>(prog_.size()))
            fatal("pc %llu: %s targets pc %lld, past the end of the "
                  "text (label bound after the last instruction)",
                  static_cast<unsigned long long>(f.pc),
                  mnemonic(prog_.text()[f.pc].op),
                  static_cast<long long>(target));
        prog_.text()[f.pc].imm = target;
    }
    if (prog_.hasLabel("main"))
        prog_.setEntry(prog_.label("main"));
    taken_ = true;
    return std::move(prog_);
}

} // namespace dttsim::isa
