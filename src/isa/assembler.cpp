#include "isa/assembler.h"

#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include "common/log.h"

namespace dttsim::isa {

namespace {

struct Token
{
    std::string text;
};

/** Split one line into tokens; commas and parens are separators that
 *  also appear as their own tokens (parens) or vanish (commas). */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            toks.push_back(cur);
            cur.clear();
        }
    };
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            flush();
        } else if (c == '(' || c == ')' || c == ':') {
            flush();
            toks.push_back(std::string(1, c));
        } else {
            cur.push_back(c);
        }
    }
    flush();
    return toks;
}

bool
isInteger(const std::string &s)
{
    if (s.empty())
        return false;
    std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i >= s.size())
        return false;
    if (s.size() > i + 2 && s[i] == '0' && (s[i + 1] == 'x'
                                            || s[i + 1] == 'X')) {
        for (std::size_t j = i + 2; j < s.size(); ++j)
            if (!std::isxdigit(static_cast<unsigned char>(s[j])))
                return false;
        return true;
    }
    for (std::size_t j = i; j < s.size(); ++j)
        if (!std::isdigit(static_cast<unsigned char>(s[j])))
            return false;
    return true;
}

std::int64_t
parseInt(const std::string &s, int line_no)
{
    if (!isInteger(s))
        fatal("line %d: expected integer, got '%s'", line_no, s.c_str());
    return std::strtoll(s.c_str(), nullptr, 0);
}

std::optional<int>
parseReg(const std::string &s)
{
    // Aliases match isa::regs (builder-authored code conventions).
    static const struct { const char *name; int idx; } aliases[] = {
        {"zero", 0}, {"ra", 1}, {"sp", 2},
        {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13},
        {"a4", 14}, {"a5", 15}, {"a6", 16}, {"a7", 17},
        {"t0", 5}, {"t1", 6}, {"t2", 7}, {"t3", 8}, {"t4", 9},
        {"t5", 28}, {"t6", 29}, {"t7", 30}, {"t8", 31},
        {"s0", 18}, {"s1", 19}, {"s2", 20}, {"s3", 21}, {"s4", 22},
        {"s5", 23}, {"s6", 24}, {"s7", 25}, {"s8", 26}, {"s9", 27},
    };
    for (const auto &a : aliases)
        if (s == a.name)
            return a.idx;
    if (s.size() >= 2 && (s[0] == 'x' || s[0] == 'f')) {
        bool digits = true;
        for (std::size_t i = 1; i < s.size(); ++i)
            digits = digits &&
                std::isdigit(static_cast<unsigned char>(s[i]));
        if (digits) {
            int idx = std::atoi(s.c_str() + 1);
            if (idx >= 0 && idx < 32)
                return idx;
        }
    }
    return std::nullopt;
}

int
needReg(const std::string &s, int line_no)
{
    auto r = parseReg(s);
    if (!r)
        fatal("line %d: expected register, got '%s'", line_no, s.c_str());
    return *r;
}

TriggerId
needTrig(const std::string &s, int line_no)
{
    auto t = static_cast<TriggerId>(parseInt(s, line_no));
    if (t < 0)
        fatal("line %d: trigger id must be >= 0, got %d", line_no, t);
    return t;
}

/** One instruction awaiting target/symbol resolution in pass 2. */
struct PendingInst
{
    Inst inst;
    int lineNo = 0;
    std::string targetSym;  ///< branch/jump target or li symbol
    bool wantsTarget = false;
};

} // namespace

Program
assemble(const std::string &source)
{
    Program prog;
    std::vector<PendingInst> pending;
    std::vector<int> lineOfPc;  ///< source line of each emitted inst

    enum class Section { Text, Data } section = Section::Text;

    std::istringstream in(source);
    std::string line;
    int line_no = 0;
    std::string pending_label;

    auto bind_label = [&](const std::string &name) {
        if (section == Section::Text)
            prog.defineLabel(name, prog.size());
        else
            pending_label = name;  // bound by the following directive
    };

    while (std::getline(in, line)) {
        ++line_no;
        auto toks = tokenize(line);
        std::size_t i = 0;

        // Leading "label :" pairs.
        while (i + 1 < toks.size() && toks[i + 1] == ":") {
            bind_label(toks[i]);
            i += 2;
        }
        if (i >= toks.size())
            continue;

        const std::string &head = toks[i];

        if (head == ".text") { section = Section::Text; continue; }
        if (head == ".data") { section = Section::Data; continue; }

        if (head[0] == '.') {
            // Data directive.
            if (section != Section::Data)
                fatal("line %d: %s outside .data", line_no, head.c_str());
            std::vector<std::uint8_t> bytes;
            auto push64 = [&](std::uint64_t v) {
                for (int b = 0; b < 8; ++b)
                    bytes.push_back(
                        static_cast<std::uint8_t>(v >> (8 * b)));
            };
            if (head == ".quad") {
                for (std::size_t j = i + 1; j < toks.size(); ++j)
                    push64(static_cast<std::uint64_t>(
                        parseInt(toks[j], line_no)));
            } else if (head == ".word") {
                for (std::size_t j = i + 1; j < toks.size(); ++j) {
                    auto v = static_cast<std::uint32_t>(
                        parseInt(toks[j], line_no));
                    for (int b = 0; b < 4; ++b)
                        bytes.push_back(
                            static_cast<std::uint8_t>(v >> (8 * b)));
                }
            } else if (head == ".byte") {
                for (std::size_t j = i + 1; j < toks.size(); ++j)
                    bytes.push_back(static_cast<std::uint8_t>(
                        parseInt(toks[j], line_no)));
            } else if (head == ".double") {
                for (std::size_t j = i + 1; j < toks.size(); ++j) {
                    double d = std::strtod(toks[j].c_str(), nullptr);
                    std::uint64_t v;
                    std::memcpy(&v, &d, 8);
                    push64(v);
                }
            } else if (head == ".space") {
                if (i + 1 >= toks.size())
                    fatal("line %d: .space needs a size", line_no);
                auto n = static_cast<std::uint64_t>(
                    parseInt(toks[i + 1], line_no));
                prog.allocData(pending_label, n);
                pending_label.clear();
                continue;
            } else {
                fatal("line %d: unknown directive '%s'", line_no,
                      head.c_str());
            }
            prog.addData(pending_label, bytes);
            pending_label.clear();
            continue;
        }

        if (section != Section::Text)
            fatal("line %d: instruction outside .text", line_no);

        std::vector<std::string> ops(toks.begin()
                                     + static_cast<long>(i) + 1,
                                     toks.end());

        // Pseudo-instructions (expanded before real decoding).
        std::string mnem = head;
        if (mnem == "beqz" || mnem == "bnez") {
            if (ops.size() != 2)
                fatal("line %d: %s expects rs, target", line_no,
                      mnem.c_str());
            ops = {ops[0], "x0", ops[1]};
            mnem = mnem == "beqz" ? "beq" : "bne";
        } else if (mnem == "j") {
            if (ops.size() != 1)
                fatal("line %d: j expects a target", line_no);
            ops = {"x0", ops[0]};
            mnem = "jal";
        } else if (mnem == "call") {
            if (ops.size() != 1)
                fatal("line %d: call expects a target", line_no);
            ops = {"ra", ops[0]};
            mnem = "jal";
        } else if (mnem == "ret") {
            if (!ops.empty())
                fatal("line %d: ret takes no operands", line_no);
            ops = {"x0", "ra", "0"};
            mnem = "jalr";
        } else if (mnem == "mv") {
            if (ops.size() != 2)
                fatal("line %d: mv expects rd, rs", line_no);
            ops = {ops[0], ops[1], "0"};
            mnem = "addi";
        }

        Opcode op = parseMnemonic(mnem);
        if (op == Opcode::NumOpcodes)
            fatal("line %d: unknown mnemonic '%s'", line_no, head.c_str());
        auto need = [&](std::size_t n) {
            if (ops.size() != n)
                fatal("line %d: %s expects %zu operand tokens, got %zu",
                      line_no, head.c_str(), n, ops.size());
        };
        // "imm ( reg )" occupies 4 tokens: imm, (, reg, ).
        auto mem_operand = [&](std::size_t at, std::int64_t &disp,
                               int &base) {
            if (at + 3 >= ops.size() + 0 || ops.size() < at + 4
                || ops[at + 1] != "(" || ops[at + 3] != ")")
                fatal("line %d: expected imm(reg) operand", line_no);
            disp = parseInt(ops[at], line_no);
            base = needReg(ops[at + 2], line_no);
        };

        PendingInst p;
        p.lineNo = line_no;
        p.inst.op = op;
        Inst &inst = p.inst;

        switch (opInfo(op).format) {
          case Format::R:
          case Format::FR:
            need(3);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            inst.rs1 = static_cast<std::uint8_t>(needReg(ops[1], line_no));
            inst.rs2 = static_cast<std::uint8_t>(needReg(ops[2], line_no));
            break;
          case Format::FR1:
          case Format::FCvtFI:
          case Format::FCvtIF:
            need(2);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            inst.rs1 = static_cast<std::uint8_t>(needReg(ops[1], line_no));
            break;
          case Format::FCmp:
            need(3);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            inst.rs1 = static_cast<std::uint8_t>(needReg(ops[1], line_no));
            inst.rs2 = static_cast<std::uint8_t>(needReg(ops[2], line_no));
            break;
          case Format::I:
          case Format::JumpR:
            need(3);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            inst.rs1 = static_cast<std::uint8_t>(needReg(ops[1], line_no));
            inst.imm = parseInt(ops[2], line_no);
            break;
          case Format::LI:
            need(2);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            if (isInteger(ops[1])) {
                inst.imm = parseInt(ops[1], line_no);
            } else {
                p.targetSym = ops[1];
                p.wantsTarget = true;
            }
            break;
          case Format::FLI:
            need(2);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            inst.fimm = std::strtod(ops[1].c_str(), nullptr);
            break;
          case Format::Load: {
            if (ops.size() != 5)
                fatal("line %d: %s expects rd, imm(rs1)", line_no,
                      head.c_str());
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            std::int64_t disp;
            int base;
            mem_operand(1, disp, base);
            inst.imm = disp;
            inst.rs1 = static_cast<std::uint8_t>(base);
            break;
          }
          case Format::Store: {
            if (ops.size() != 5)
                fatal("line %d: %s expects rs2, imm(rs1)", line_no,
                      head.c_str());
            inst.rs2 = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            std::int64_t disp;
            int base;
            mem_operand(1, disp, base);
            inst.imm = disp;
            inst.rs1 = static_cast<std::uint8_t>(base);
            break;
          }
          case Format::TStore: {
            if (ops.size() != 6)
                fatal("line %d: %s expects rs2, imm(rs1), trig", line_no,
                      head.c_str());
            inst.rs2 = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            std::int64_t disp;
            int base;
            mem_operand(1, disp, base);
            inst.imm = disp;
            inst.rs1 = static_cast<std::uint8_t>(base);
            inst.trig = needTrig(ops[5], line_no);
            prog.noteTrigger(inst.trig);
            break;
          }
          case Format::Branch:
            need(3);
            inst.rs1 = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            inst.rs2 = static_cast<std::uint8_t>(needReg(ops[1], line_no));
            if (isInteger(ops[2])) {
                inst.imm = parseInt(ops[2], line_no);
            } else {
                p.targetSym = ops[2];
                p.wantsTarget = true;
            }
            break;
          case Format::Jump:
            need(2);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            if (isInteger(ops[1])) {
                inst.imm = parseInt(ops[1], line_no);
            } else {
                p.targetSym = ops[1];
                p.wantsTarget = true;
            }
            break;
          case Format::TReg:
            need(2);
            inst.trig = needTrig(ops[0], line_no);
            prog.noteTrigger(inst.trig);
            if (isInteger(ops[1])) {
                inst.imm = parseInt(ops[1], line_no);
            } else {
                p.targetSym = ops[1];
                p.wantsTarget = true;
            }
            break;
          case Format::Trig:
            need(1);
            inst.trig = needTrig(ops[0], line_no);
            prog.noteTrigger(inst.trig);
            break;
          case Format::TChk:
            need(2);
            inst.rd = static_cast<std::uint8_t>(needReg(ops[0], line_no));
            inst.trig = needTrig(ops[1], line_no);
            prog.noteTrigger(inst.trig);
            break;
          case Format::None:
            need(0);
            break;
        }

        std::uint64_t pc = prog.append(inst);
        lineOfPc.push_back(line_no);
        if (p.wantsTarget) {
            p.inst = inst;
            pending.push_back(p);
            pending.back().inst.imm = static_cast<std::int64_t>(pc);
            // Reuse imm to remember the pc; resolved below.
        }
    }

    // Pass 2: resolve symbolic targets.
    for (const auto &p : pending) {
        auto pc = static_cast<std::uint64_t>(p.inst.imm);
        Inst &inst = prog.text()[pc];
        if (inst.op == Opcode::LI && prog.hasDataSymbol(p.targetSym)) {
            inst.imm = static_cast<std::int64_t>(
                prog.dataSymbol(p.targetSym));
        } else if (prog.hasLabel(p.targetSym)) {
            inst.imm = static_cast<std::int64_t>(prog.label(p.targetSym));
        } else if (prog.hasDataSymbol(p.targetSym)
                   && inst.op == Opcode::TREG) {
            fatal("line %d: treg target '%s' is a data symbol",
                  p.lineNo, p.targetSym.c_str());
        } else {
            fatal("line %d: unresolved symbol '%s'", p.lineNo,
                  p.targetSym.c_str());
        }
    }

    // Pass 3: every control-transfer and treg target (numeric or
    // resolved) must land inside the text.
    for (std::uint64_t pc = 0; pc < prog.size(); ++pc) {
        const Inst &inst = prog.text()[pc];
        Format fmt = opInfo(inst.op).format;
        bool hasTarget = fmt == Format::Branch || fmt == Format::Jump
            || inst.op == Opcode::TREG;
        if (!hasTarget)
            continue;
        if (inst.imm < 0
            || inst.imm >= static_cast<std::int64_t>(prog.size()))
            fatal("line %d: %s target %lld is outside the text "
                  "(0..%llu)",
                  lineOfPc[pc], mnemonic(inst.op),
                  static_cast<long long>(inst.imm),
                  static_cast<unsigned long long>(prog.size() - 1));
    }

    if (prog.hasLabel("main"))
        prog.setEntry(prog.label("main"));
    return prog;
}

} // namespace dttsim::isa
