#pragma once

/**
 * @file
 * A loadable program image: instruction text, initialized data
 * segments, and symbol tables for both. Produced by the Assembler or
 * the ProgramBuilder, consumed by the functional and timing cores.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/inst.h"

namespace dttsim::isa {

/** One initialized region of the data segment. */
struct DataChunk
{
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

/** Default base address of the data segment. */
inline constexpr Addr kDataBase = 0x100000;

/** Base of the per-context stack area (stacks grow down from here). */
inline constexpr Addr kStackTop = 0x7ff00000;

/** Bytes reserved per hardware-context stack. */
inline constexpr Addr kStackSize = 0x10000;

/** A complete program image. */
class Program
{
  public:
    /** Append one instruction; returns its PC (instruction index). */
    std::uint64_t
    append(const Inst &inst)
    {
        text_.push_back(inst);
        return text_.size() - 1;
    }

    const std::vector<Inst> &text() const { return text_; }
    std::vector<Inst> &text() { return text_; }

    /** Instruction at @p pc. @pre pc < size(). */
    const Inst &at(std::uint64_t pc) const;

    std::uint64_t size() const { return text_.size(); }

    /** Entry point (instruction index) for the main thread. */
    std::uint64_t entry() const { return entry_; }
    void setEntry(std::uint64_t pc) { entry_ = pc; }

    /** Define a text label at @p pc. */
    void defineLabel(const std::string &name, std::uint64_t pc);

    /** Look up a text label; fatal() if missing. */
    std::uint64_t label(const std::string &name) const;
    bool hasLabel(const std::string &name) const;

    /**
     * Reserve @p bytes in the data segment, 8-byte aligned, under
     * @p name; returns the assigned address.
     */
    Addr allocData(const std::string &name, std::uint64_t bytes);

    /** Add pre-initialized bytes at the next free data address. */
    Addr addData(const std::string &name,
                 const std::vector<std::uint8_t> &bytes);

    /** Look up a data symbol; fatal() if missing. */
    Addr dataSymbol(const std::string &name) const;
    bool hasDataSymbol(const std::string &name) const;

    const std::vector<DataChunk> &dataChunks() const { return chunks_; }
    Addr dataEnd() const { return nextData_; }

    /** Highest trigger id used + 1 (sizes the DTT registry). */
    int numTriggers() const { return numTriggers_; }
    void noteTrigger(TriggerId t);

    /**
     * Replace the data segment wholesale: pre-built chunks plus the
     * next free data address. The wire-deserialization path
     * (net::trySimJobFromJson) rebuilding a program image a remote
     * client assembled; symbol tables are not part of the image a
     * simulation consumes, so they stay empty.
     */
    void
    restoreDataLayout(std::vector<DataChunk> chunks, Addr data_end)
    {
        chunks_ = std::move(chunks);
        nextData_ = data_end;
    }

    /** All text labels (for disassembly annotation). */
    const std::map<std::string, std::uint64_t> &labels() const
    {
        return textSyms_;
    }

    /** All data symbols (for the static analyzer's chunk table). */
    const std::map<std::string, Addr> &dataSymbols() const
    {
        return dataSyms_;
    }

  private:
    std::vector<Inst> text_;
    std::vector<DataChunk> chunks_;
    std::map<std::string, std::uint64_t> textSyms_;
    std::map<std::string, Addr> dataSyms_;
    std::uint64_t entry_ = 0;
    Addr nextData_ = kDataBase;
    int numTriggers_ = 0;
};

} // namespace dttsim::isa
