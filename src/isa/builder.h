#pragma once

/**
 * @file
 * ProgramBuilder: a typed C++ emission DSL for authoring dttsim
 * programs. This is how the SPEC-like workloads are written — one
 * method per opcode, forward-referencing labels, data-segment helpers
 * and a structured counted-loop helper.
 *
 * @code
 * ProgramBuilder b;
 * using namespace dttsim::isa::regs;
 * Addr arr = b.quads("arr", {1, 2, 3});
 * b.li(a0, static_cast<std::int64_t>(arr));
 * b.loop(t0, 3, [&] {
 *     b.slli(t1, t0, 3);
 *     b.add(t1, t1, a0);
 *     b.ld(t2, t1, 0);
 *     b.add(s0, s0, t2);
 * });
 * b.halt();
 * Program p = b.take();
 * @endcode
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace dttsim::isa {

/** Integer register operand. */
struct Reg
{
    std::uint8_t idx;
};

/** Floating-point register operand. */
struct FReg
{
    std::uint8_t idx;
};

/** Conventional register names for builder-authored code. */
namespace regs {

inline constexpr Reg x(int i) { return Reg{std::uint8_t(i)}; }
inline constexpr FReg f(int i) { return FReg{std::uint8_t(i)}; }

inline constexpr Reg zero{0};
inline constexpr Reg ra{1};
inline constexpr Reg sp{2};
/** Argument registers a0..a7 = x10..x17 (a0/a1 receive the DTT
 *  trigger address and stored value at spawn). */
inline constexpr Reg a0{10}, a1{11}, a2{12}, a3{13};
inline constexpr Reg a4{14}, a5{15}, a6{16}, a7{17};
/** Temporaries. */
inline constexpr Reg t0{5}, t1{6}, t2{7}, t3{8}, t4{9};
inline constexpr Reg t5{28}, t6{29}, t7{30}, t8{31};
/** Long-lived locals. */
inline constexpr Reg s0{18}, s1{19}, s2{20}, s3{21}, s4{22};
inline constexpr Reg s5{23}, s6{24}, s7{25}, s8{26}, s9{27};

inline constexpr FReg ft0{0}, ft1{1}, ft2{2}, ft3{3}, ft4{4}, ft5{5};
inline constexpr FReg fs0{8}, fs1{9}, fs2{10}, fs3{11}, fs4{12};
inline constexpr FReg fa0{16}, fa1{17};

} // namespace regs

/** Forward-referencing code label handle. */
class Label
{
  public:
    Label() = default;

  private:
    friend class ProgramBuilder;
    explicit Label(int id) : id_(id) {}
    int id_ = -1;
};

/** Emission DSL producing a Program. */
class ProgramBuilder
{
  public:
    ProgramBuilder() = default;

    // ----- labels ---------------------------------------------------
    /** Create an unbound label. */
    Label newLabel();
    /** Bind @p l to the current emission point. */
    void bind(Label &l);
    /** Create a label bound right here. */
    Label here();
    /** Bind a *named* label (visible in Program::labels()). */
    void bindNamed(const std::string &name);

    // ----- data segment ---------------------------------------------
    Addr quads(const std::string &name,
               const std::vector<std::int64_t> &vals);
    Addr doubles(const std::string &name,
                 const std::vector<double> &vals);
    Addr bytes(const std::string &name,
               const std::vector<std::uint8_t> &vals);
    Addr space(const std::string &name, std::uint64_t size);

    // ----- integer ALU ----------------------------------------------
    void add(Reg rd, Reg a, Reg b);
    void sub(Reg rd, Reg a, Reg b);
    void mul(Reg rd, Reg a, Reg b);
    void div(Reg rd, Reg a, Reg b);
    void rem(Reg rd, Reg a, Reg b);
    void and_(Reg rd, Reg a, Reg b);
    void or_(Reg rd, Reg a, Reg b);
    void xor_(Reg rd, Reg a, Reg b);
    void sll(Reg rd, Reg a, Reg b);
    void srl(Reg rd, Reg a, Reg b);
    void sra(Reg rd, Reg a, Reg b);
    void slt(Reg rd, Reg a, Reg b);
    void sltu(Reg rd, Reg a, Reg b);
    void addi(Reg rd, Reg a, std::int64_t imm);
    void andi(Reg rd, Reg a, std::int64_t imm);
    void ori(Reg rd, Reg a, std::int64_t imm);
    void xori(Reg rd, Reg a, std::int64_t imm);
    void slli(Reg rd, Reg a, std::int64_t imm);
    void srli(Reg rd, Reg a, std::int64_t imm);
    void srai(Reg rd, Reg a, std::int64_t imm);
    void slti(Reg rd, Reg a, std::int64_t imm);
    void li(Reg rd, std::int64_t imm);
    /** rd <- address constant. */
    void la(Reg rd, Addr addr) { li(rd, std::int64_t(addr)); }
    void mv(Reg rd, Reg a) { addi(rd, a, 0); }

    // ----- memory ---------------------------------------------------
    void ld(Reg rd, Reg base, std::int64_t off);
    void lw(Reg rd, Reg base, std::int64_t off);
    void lb(Reg rd, Reg base, std::int64_t off);
    void sd(Reg rs, Reg base, std::int64_t off);
    void sw(Reg rs, Reg base, std::int64_t off);
    void sb(Reg rs, Reg base, std::int64_t off);
    void fld(FReg rd, Reg base, std::int64_t off);
    void fsd(FReg rs, Reg base, std::int64_t off);

    // ----- floating point -------------------------------------------
    void fli(FReg rd, double v);
    void fadd(FReg rd, FReg a, FReg b);
    void fsub(FReg rd, FReg a, FReg b);
    void fmul(FReg rd, FReg a, FReg b);
    void fdiv(FReg rd, FReg a, FReg b);
    void fsqrt(FReg rd, FReg a);
    void fmin(FReg rd, FReg a, FReg b);
    void fmax(FReg rd, FReg a, FReg b);
    void fneg(FReg rd, FReg a);
    void fabs_(FReg rd, FReg a);
    void fcvtdw(FReg rd, Reg a);
    void fcvtwd(Reg rd, FReg a);
    void feq(Reg rd, FReg a, FReg b);
    void flt(Reg rd, FReg a, FReg b);
    void fle(Reg rd, FReg a, FReg b);
    void fmv(FReg rd, FReg a) { fabs_impl(rd, a); }

    // ----- control flow ---------------------------------------------
    void beq(Reg a, Reg b, Label l);
    void bne(Reg a, Reg b, Label l);
    void blt(Reg a, Reg b, Label l);
    void bge(Reg a, Reg b, Label l);
    void bltu(Reg a, Reg b, Label l);
    void bgeu(Reg a, Reg b, Label l);
    void beqz(Reg a, Label l) { beq(a, regs::zero, l); }
    void bnez(Reg a, Label l) { bne(a, regs::zero, l); }
    void jal(Reg rd, Label l);
    void jalr(Reg rd, Reg base, std::int64_t off);
    void j(Label l) { jal(regs::zero, l); }
    void call(Label l) { jal(regs::ra, l); }
    void ret() { jalr(regs::zero, regs::ra, 0); }
    void nop();
    void halt();

    // ----- DTT extension --------------------------------------------
    void treg(TriggerId t, Label entry);
    void tunreg(TriggerId t);
    void tsd(Reg rs, Reg base, std::int64_t off, TriggerId t);
    void tsw(Reg rs, Reg base, std::int64_t off, TriggerId t);
    void tsb(Reg rs, Reg base, std::int64_t off, TriggerId t);
    void twait(TriggerId t);
    void tchk(Reg rd, TriggerId t);
    void tclr(TriggerId t);
    void tret();

    // ----- structured helpers ---------------------------------------
    /**
     * Counted loop: idx runs 0..bound-1 (bound read from a register).
     * The body must not clobber idx or bound. Bottom-tested (one
     * branch per iteration).
     */
    void loop(Reg idx, Reg bound, const std::function<void()> &body);

    /** Counted loop with a constant bound (uses @p scratch for it). */
    void loop(Reg idx, std::int64_t bound, Reg scratch,
              const std::function<void()> &body);

    /** Convenience: constant-bound loop using x4 as bound scratch. */
    void loop(Reg idx, std::int64_t bound,
              const std::function<void()> &body);

    // ----- finish ----------------------------------------------------
    /** Current emission PC. */
    std::uint64_t pc() const { return prog_.size(); }

    /**
     * Resolve all label references and return the finished program.
     * The builder must not be reused afterwards. Entry point is the
     * named label "main" if bound, else instruction 0.
     */
    Program take();

  private:
    void emit(const Inst &inst);
    void emitTarget(Inst inst, Label l);
    void fabs_impl(FReg rd, FReg a);

    struct Fixup
    {
        std::uint64_t pc;
        int labelId;
    };

    Program prog_;
    std::vector<std::int64_t> labelPc_;  ///< -1 while unbound
    std::vector<Fixup> fixups_;
    bool taken_ = false;
};

} // namespace dttsim::isa
