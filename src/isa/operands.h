#pragma once

/**
 * @file
 * Operand enumeration helpers shared by the timing core (dependence
 * linking) and the profilers (dynamic instruction-reuse analysis).
 */

#include "isa/inst.h"
#include "isa/opcodes.h"

namespace dttsim::isa {

/**
 * Invoke fn(is_fp, reg_index) for every source register operand of
 * @p inst.
 */
template <typename Fn>
void
forEachSource(const Inst &inst, Fn &&fn)
{
    switch (opInfo(inst.op).format) {
      case Format::R:
      case Format::Branch:
      case Format::TStore:
        fn(false, static_cast<int>(inst.rs1));
        fn(false, static_cast<int>(inst.rs2));
        break;
      case Format::Store:
        fn(false, static_cast<int>(inst.rs1));
        if (inst.op == Opcode::FSD)
            fn(true, static_cast<int>(inst.rs2));
        else
            fn(false, static_cast<int>(inst.rs2));
        break;
      case Format::I:
      case Format::JumpR:
      case Format::Load:
      case Format::FCvtFI:
        fn(false, static_cast<int>(inst.rs1));
        break;
      case Format::FR:
      case Format::FCmp:
        fn(true, static_cast<int>(inst.rs1));
        fn(true, static_cast<int>(inst.rs2));
        break;
      case Format::FR1:
      case Format::FCvtIF:
        fn(true, static_cast<int>(inst.rs1));
        break;
      case Format::LI:
      case Format::FLI:
      case Format::Jump:
      case Format::TReg:
      case Format::Trig:
      case Format::TChk:
      case Format::None:
        break;
    }
}

/**
 * Destination register of @p inst.
 * @return false when the instruction writes no register (stores,
 *         branches, x0 sinks).
 */
inline bool
destReg(const Inst &inst, bool &is_fp, int &idx)
{
    if (writesIntReg(inst.op)) {
        if (inst.rd == 0)
            return false;
        is_fp = false;
        idx = inst.rd;
        return true;
    }
    if (writesFpReg(inst.op)) {
        is_fp = true;
        idx = inst.rd;
        return true;
    }
    return false;
}

} // namespace dttsim::isa
