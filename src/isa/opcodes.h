#pragma once

/**
 * @file
 * Opcode set of the dttsim RISC ISA, including the data-triggered
 * thread (DTT) extension of Tseng & Tullsen (HPCA 2011): triggering
 * stores (TSD/TSW/TSB), thread-registry management (TREG/TUNREG),
 * main-thread synchronization (TWAIT/TCHK/TCLR) and DTT termination
 * (TRET).
 *
 * Instructions are kept in decoded form throughout the simulator (no
 * binary encoding); each opcode carries static metadata: mnemonic,
 * assembly format, functional-unit class and execution latency class.
 */

#include <cstdint>
#include <string>

namespace dttsim::isa {

/** Every opcode in the base ISA plus the DTT extension. */
enum class Opcode : std::uint8_t {
    // Integer register-register.
    ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // Integer register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    // Full-width immediate load.
    LI,
    // Integer loads/stores (D = 8 bytes, W = 4, B = 1).
    LD, LW, LB, SD, SW, SB,
    // Floating point (doubles).
    FLD, FSD, FLI,
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX, FNEG, FABS,
    FCVTDW,  ///< fd <- (double) rs1
    FCVTWD,  ///< rd <- (int64) trunc(fs1)
    FEQ, FLT, FLE,
    // Control flow.
    BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR,
    // Misc.
    NOP, HALT,
    // DTT extension.
    TREG,    ///< register trigger: registry[trig] = entry pc
    TUNREG,  ///< deregister trigger
    TSD,     ///< triggering 8-byte store
    TSW,     ///< triggering 4-byte store
    TSB,     ///< triggering 1-byte store
    TWAIT,   ///< stall until trigger has no pending/running DTTs
    TCHK,    ///< rd <- pending+running count (plus overflow flag bit)
    TCLR,    ///< clear trigger's sticky overflow flag
    TRET,    ///< terminate the current DTT, free its context

    NumOpcodes,
};

/** Assembly operand format, used by the assembler and disassembler. */
enum class Format : std::uint8_t {
    R,      ///< op rd, rs1, rs2
    I,      ///< op rd, rs1, imm
    LI,     ///< op rd, imm64
    FLI,    ///< op fd, double-imm
    Load,   ///< op rd, imm(rs1)
    Store,  ///< op rs2, imm(rs1)
    TStore, ///< op rs2, imm(rs1), trig
    Branch, ///< op rs1, rs2, target
    Jump,   ///< op rd, target
    JumpR,  ///< op rd, rs1, imm
    FR,     ///< op fd, fs1, fs2
    FR1,    ///< op fd, fs1
    FCvtFI, ///< op fd, rs1
    FCvtIF, ///< op rd, fs1
    FCmp,   ///< op rd, fs1, fs2
    TReg,   ///< op trig, target
    Trig,   ///< op trig
    TChk,   ///< op rd, trig
    None,   ///< op
};

/** Functional-unit class an opcode executes on. */
enum class FuClass : std::uint8_t {
    IntAlu, IntMul, IntDiv, FpAdd, FpMul, FpDiv, Mem, Branch, Dtt,
};

/** Static per-opcode properties. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    FuClass fu;
    std::uint8_t latency;  ///< execute latency in cycles (Mem: AGU only)
};

/** Look up static properties of an opcode. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic string of an opcode. */
inline const char *mnemonic(Opcode op) { return opInfo(op).mnemonic; }

/** Parse a mnemonic; returns NumOpcodes on failure. */
Opcode parseMnemonic(const std::string &s);

/** True for conditional branches and unconditional jumps. */
bool isControl(Opcode op);

/** True for all memory reads (LD/LW/LB/FLD). */
bool isLoad(Opcode op);

/** True for all memory writes, including triggering stores. */
bool isStore(Opcode op);

/** True for the triggering stores TSD/TSW/TSB. */
bool isTStore(Opcode op);

/** Access size in bytes for load/store opcodes, 0 otherwise. */
int accessSize(Opcode op);

/** True when the opcode writes an integer destination register. */
bool writesIntReg(Opcode op);

/** True when the opcode writes a floating-point destination register. */
bool writesFpReg(Opcode op);

} // namespace dttsim::isa
