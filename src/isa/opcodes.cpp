#include "isa/opcodes.h"

#include <unordered_map>

#include "common/log.h"

namespace dttsim::isa {

namespace {

const OpInfo kOpTable[] = {
    // mnemonic, format, fu, latency
    {"add",    Format::R,      FuClass::IntAlu, 1},
    {"sub",    Format::R,      FuClass::IntAlu, 1},
    {"mul",    Format::R,      FuClass::IntMul, 3},
    {"div",    Format::R,      FuClass::IntDiv, 20},
    {"rem",    Format::R,      FuClass::IntDiv, 20},
    {"and",    Format::R,      FuClass::IntAlu, 1},
    {"or",     Format::R,      FuClass::IntAlu, 1},
    {"xor",    Format::R,      FuClass::IntAlu, 1},
    {"sll",    Format::R,      FuClass::IntAlu, 1},
    {"srl",    Format::R,      FuClass::IntAlu, 1},
    {"sra",    Format::R,      FuClass::IntAlu, 1},
    {"slt",    Format::R,      FuClass::IntAlu, 1},
    {"sltu",   Format::R,      FuClass::IntAlu, 1},
    {"addi",   Format::I,      FuClass::IntAlu, 1},
    {"andi",   Format::I,      FuClass::IntAlu, 1},
    {"ori",    Format::I,      FuClass::IntAlu, 1},
    {"xori",   Format::I,      FuClass::IntAlu, 1},
    {"slli",   Format::I,      FuClass::IntAlu, 1},
    {"srli",   Format::I,      FuClass::IntAlu, 1},
    {"srai",   Format::I,      FuClass::IntAlu, 1},
    {"slti",   Format::I,      FuClass::IntAlu, 1},
    {"li",     Format::LI,     FuClass::IntAlu, 1},
    {"ld",     Format::Load,   FuClass::Mem,    1},
    {"lw",     Format::Load,   FuClass::Mem,    1},
    {"lb",     Format::Load,   FuClass::Mem,    1},
    {"sd",     Format::Store,  FuClass::Mem,    1},
    {"sw",     Format::Store,  FuClass::Mem,    1},
    {"sb",     Format::Store,  FuClass::Mem,    1},
    {"fld",    Format::Load,   FuClass::Mem,    1},
    {"fsd",    Format::Store,  FuClass::Mem,    1},
    {"fli",    Format::FLI,    FuClass::FpAdd,  1},
    {"fadd",   Format::FR,     FuClass::FpAdd,  3},
    {"fsub",   Format::FR,     FuClass::FpAdd,  3},
    {"fmul",   Format::FR,     FuClass::FpMul,  4},
    {"fdiv",   Format::FR,     FuClass::FpDiv,  16},
    {"fsqrt",  Format::FR1,    FuClass::FpDiv,  20},
    {"fmin",   Format::FR,     FuClass::FpAdd,  3},
    {"fmax",   Format::FR,     FuClass::FpAdd,  3},
    {"fneg",   Format::FR1,    FuClass::FpAdd,  1},
    {"fabs",   Format::FR1,    FuClass::FpAdd,  1},
    {"fcvtdw", Format::FCvtFI, FuClass::FpAdd,  3},
    {"fcvtwd", Format::FCvtIF, FuClass::FpAdd,  3},
    {"feq",    Format::FCmp,   FuClass::FpAdd,  3},
    {"flt",    Format::FCmp,   FuClass::FpAdd,  3},
    {"fle",    Format::FCmp,   FuClass::FpAdd,  3},
    {"beq",    Format::Branch, FuClass::Branch, 1},
    {"bne",    Format::Branch, FuClass::Branch, 1},
    {"blt",    Format::Branch, FuClass::Branch, 1},
    {"bge",    Format::Branch, FuClass::Branch, 1},
    {"bltu",   Format::Branch, FuClass::Branch, 1},
    {"bgeu",   Format::Branch, FuClass::Branch, 1},
    {"jal",    Format::Jump,   FuClass::Branch, 1},
    {"jalr",   Format::JumpR,  FuClass::Branch, 1},
    {"nop",    Format::None,   FuClass::IntAlu, 1},
    {"halt",   Format::None,   FuClass::IntAlu, 1},
    {"treg",   Format::TReg,   FuClass::Dtt,    1},
    {"tunreg", Format::Trig,   FuClass::Dtt,    1},
    {"tsd",    Format::TStore, FuClass::Mem,    1},
    {"tsw",    Format::TStore, FuClass::Mem,    1},
    {"tsb",    Format::TStore, FuClass::Mem,    1},
    {"twait",  Format::Trig,   FuClass::Dtt,    1},
    {"tchk",   Format::TChk,   FuClass::Dtt,    1},
    {"tclr",   Format::Trig,   FuClass::Dtt,    1},
    {"tret",   Format::None,   FuClass::Dtt,    1},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
              static_cast<std::size_t>(Opcode::NumOpcodes),
              "opcode table out of sync with Opcode enum");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    if (idx >= static_cast<std::size_t>(Opcode::NumOpcodes))
        panic("opInfo: invalid opcode %zu", idx);
    return kOpTable[idx];
}

Opcode
parseMnemonic(const std::string &s)
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i)
            m.emplace(kOpTable[i].mnemonic, static_cast<Opcode>(i));
        return m;
    }();
    auto it = map.find(s);
    return it == map.end() ? Opcode::NumOpcodes : it->second;
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
      case Opcode::JAL: case Opcode::JALR:
        return true;
      default:
        return false;
    }
}

bool
isLoad(Opcode op)
{
    switch (op) {
      case Opcode::LD: case Opcode::LW: case Opcode::LB: case Opcode::FLD:
        return true;
      default:
        return false;
    }
}

bool
isStore(Opcode op)
{
    switch (op) {
      case Opcode::SD: case Opcode::SW: case Opcode::SB: case Opcode::FSD:
      case Opcode::TSD: case Opcode::TSW: case Opcode::TSB:
        return true;
      default:
        return false;
    }
}

bool
isTStore(Opcode op)
{
    return op == Opcode::TSD || op == Opcode::TSW || op == Opcode::TSB;
}

int
accessSize(Opcode op)
{
    switch (op) {
      case Opcode::LD: case Opcode::SD: case Opcode::TSD:
      case Opcode::FLD: case Opcode::FSD:
        return 8;
      case Opcode::LW: case Opcode::SW: case Opcode::TSW:
        return 4;
      case Opcode::LB: case Opcode::SB: case Opcode::TSB:
        return 1;
      default:
        return 0;
    }
}

bool
writesIntReg(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::ADDI: case Opcode::ANDI:
      case Opcode::ORI: case Opcode::XORI: case Opcode::SLLI:
      case Opcode::SRLI: case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::LI: case Opcode::LD: case Opcode::LW: case Opcode::LB:
      case Opcode::FCVTWD: case Opcode::FEQ: case Opcode::FLT:
      case Opcode::FLE: case Opcode::JAL: case Opcode::JALR:
      case Opcode::TCHK:
        return true;
      default:
        return false;
    }
}

bool
writesFpReg(Opcode op)
{
    switch (op) {
      case Opcode::FLD: case Opcode::FLI: case Opcode::FADD:
      case Opcode::FSUB: case Opcode::FMUL: case Opcode::FDIV:
      case Opcode::FSQRT: case Opcode::FMIN: case Opcode::FMAX:
      case Opcode::FNEG: case Opcode::FABS: case Opcode::FCVTDW:
        return true;
      default:
        return false;
    }
}

} // namespace dttsim::isa
