#pragma once

/**
 * @file
 * Configuration of the computation-reuse accelerator
 * (reuse::ReuseUnit): ReuseSense-style per-static-instruction reuse
 * buffers served through the core's fetch-probe hook.
 */

namespace dttsim::reuse {

/** Reuse-unit hardware parameters. */
struct ReuseConfig
{
    /** LRU entries per static instruction. 8 matches the in-core
     *  comparison machine (CoreConfig::reuseEntriesPerPc default);
     *  very large values approximate the ideal-reuse limit. */
    int entriesPerPc = 8;
};

} // namespace dttsim::reuse
