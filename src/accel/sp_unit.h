#pragma once

/**
 * @file
 * Speculative-precomputation accelerator: triggering stores emit
 * tokens, each token dispatches the trigger's precompute slice onto a
 * free SMT context. Contrast with the DTT machine (accel/dtt_accel.h):
 *
 *  - no silent-store suppression — precomputation fires on *every*
 *    triggering store, redundant or not (the redundancy-elimination
 *    comparison point of the paper's Fig. 12);
 *  - no duplicate coalescing — every token is one slice run;
 *  - full token queue: stall the store (lossless default) or skip the
 *    slice (SpConfig::skipWhenBusy, lossy opt-in).
 *
 * The slice registry, token queue and status table reuse the DTT
 * building blocks (core/registry.h, core/queue.h, core/status.h);
 * TWAIT/TCHK read the same outstanding-work formula so Variant::Dtt
 * programs run unmodified under --accel=sp.
 */

#include <memory>

#include "accel/sp_config.h"
#include "core/queue.h"
#include "core/registry.h"
#include "core/status.h"
#include "cpu/accelerator.h"

namespace dttsim::sp {

/** The token-based precompute unit as a pluggable accelerator. */
class PrecomputeUnit final : public cpu::Accelerator
{
  public:
    PrecomputeUnit(const SpConfig &config, int num_contexts);

    const SpConfig &config() const { return config_; }
    const dtt::ThreadQueue &tokenQueue() const { return st_->queue; }

    // ----- lifecycle --------------------------------------------------
    void reset() override;

    // ----- commit-time events -----------------------------------------
    void tregCommit(TriggerId t, std::uint64_t entry_pc) override;
    void tunregCommit(TriggerId t) override;
    void tclrCommit(TriggerId t) override;
    bool tstoreCommit(TriggerId t, Addr addr, std::uint64_t value,
                      bool silent) override;
    void tstoreDone(TriggerId t) override;
    void tretCommit(CtxId ctx) override;

    // ----- fetch-time events ------------------------------------------
    void tstoreFetched(TriggerId t) override;
    bool waitSatisfied(TriggerId t) const override;
    std::int64_t chk(TriggerId t) const override;

    // ----- cycle hook --------------------------------------------------
    void tick() override;

    // ----- fault interaction -------------------------------------------
    void threadSquashed(CtxId ctx, Addr addr,
                        std::uint64_t value) override;

  private:
    /** The resettable machine state (reset() reconstructs it). */
    struct State
    {
        State(const SpConfig &config, int num_contexts)
            : registry(config.maxTriggers),
              queue(config.tokenQueueSize, /*coalesce=*/false),
              status(config.maxTriggers, num_contexts)
        {
        }
        dtt::ThreadRegistry registry;
        dtt::ThreadQueue queue;
        dtt::ThreadStatusTable status;
    };

    SpConfig config_;
    int numContexts_;
    std::unique_ptr<State> st_;
};

} // namespace dttsim::sp
