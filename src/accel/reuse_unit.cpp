#include "accel/reuse_unit.h"

#include "sim/faultplan.h"

namespace dttsim::reuse {

ReuseUnit::ReuseUnit(const ReuseConfig &config)
    : Accelerator(cpu::AccelKind::Reuse, "accel"),
      config_(config),
      snoop_(stats().counter("snoopedStores"))
{
    stats().counter("probes");
    stats().counter("hits");
    stats().counter("faultTableFlushes");
}

void
ReuseUnit::attach(cpu::AccelPort &port)
{
    Accelerator::attach(port);
    if (table_ == nullptr)
        table_ = std::make_unique<ReuseBufferSet>(
            port.programSize(), config_.entriesPerPc);
}

void
ReuseUnit::reset()
{
    Accelerator::reset();
    // A non-null table implies attach() ran; before that there is
    // nothing to rebuild (and no port to size a table from).
    if (table_ != nullptr)
        table_ = std::make_unique<ReuseBufferSet>(
            port().programSize(), config_.entriesPerPc);
}

bool
ReuseUnit::fetchProbe(std::uint64_t pc, const ReuseProbe &probe)
{
    ++stats().counter("probes");
    if (!table_->lookupInsert(pc, probe))
        return false;
    // Transparent fault: a spurious invalidation wipes the whole
    // table on what would have been a hit. Purely a timing event —
    // the instruction just executes normally.
    if (plan() != nullptr
        && plan()->inject(sim::FaultSite::FlushReuseTable)) {
        table_ = std::make_unique<ReuseBufferSet>(
            port().programSize(), config_.entriesPerPc);
        ++stats().counter("faultTableFlushes");
        return false;
    }
    ++stats().counter("hits");
    return true;
}

} // namespace dttsim::reuse
