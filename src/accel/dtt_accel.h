#pragma once

/**
 * @file
 * The data-triggered-threads accelerator: the paper's machine behind
 * the cpu::Accelerator interface. A thin event adapter over
 * dtt::DttController — the controller keeps the policy (trigger
 * evaluation, silent-store suppression, coalescing, full-queue
 * handling, TWAIT/TCHK), this class maps core events onto it and
 * owns the spawn arbitration loop that used to live in the core.
 */

#include <memory>

#include "core/controller.h"
#include "core/dtt_config.h"
#include "cpu/accelerator.h"

namespace dttsim::accel {

/** DTT control unit as a pluggable accelerator. */
class DttAccel final : public cpu::Accelerator
{
  public:
    DttAccel(const dtt::DttConfig &config, int num_contexts);

    /** The wrapped control unit (never null). Re-fetch after reset():
     *  reset() reconstructs the controller. */
    dtt::DttController *controller() { return ctrl_.get(); }
    const dtt::DttController *controller() const { return ctrl_.get(); }

    const dtt::DttConfig &config() const { return config_; }

    // ----- lifecycle --------------------------------------------------
    void reset() override;
    void setFaultPlan(sim::FaultPlan *plan) override;

    // ----- commit-time events -----------------------------------------
    void
    tregCommit(TriggerId t, std::uint64_t entry_pc) override
    {
        ctrl_->onTregCommit(t, entry_pc);
    }

    void tunregCommit(TriggerId t) override { ctrl_->onTunregCommit(t); }

    void tclrCommit(TriggerId t) override { ctrl_->onTclrCommit(t); }

    bool tstoreCommit(TriggerId t, Addr addr, std::uint64_t value,
                      bool silent) override;

    void tstoreDone(TriggerId t) override { ctrl_->onTstoreDone(t); }

    void tretCommit(CtxId ctx) override { ctrl_->onTretCommit(ctx); }

    // ----- fetch-time events ------------------------------------------
    void
    tstoreFetched(TriggerId t) override
    {
        ctrl_->onTstoreFetched(t);
    }

    bool
    waitSatisfied(TriggerId t) const override
    {
        return ctrl_->waitSatisfied(t);
    }

    std::int64_t chk(TriggerId t) const override { return ctrl_->chk(t); }

    // ----- cycle hook --------------------------------------------------
    void tick() override;

    // ----- fault interaction -------------------------------------------
    void
    threadSquashed(CtxId ctx, Addr addr, std::uint64_t value) override
    {
        ctrl_->onThreadSquashed(ctx, addr, value);
    }

  private:
    dtt::DttConfig config_;
    int numContexts_;
    std::unique_ptr<dtt::DttController> ctrl_;
};

} // namespace dttsim::accel
