#pragma once

/**
 * @file
 * Configuration of the speculative-precomputation accelerator
 * (sp::PrecomputeUnit): token-based slice triggering in the style of
 * helper-thread prefetching frameworks. A committing triggering store
 * emits a *token*; each token runs the trigger's precompute slice on
 * a free SMT context.
 */

#include "common/types.h"

namespace dttsim::sp {

/** Precompute-unit hardware parameters. */
struct SpConfig
{
    /** Static trigger table size (slice registry entries). */
    int maxTriggers = 64;

    /** Token queue capacity (pending precompute slices). */
    int tokenQueueSize = 16;

    /**
     * Skip-one-slice policy: when a token arrives and the token queue
     * is full (every context busy and the backlog saturated), discard
     * the token and set the trigger's sticky overflow flag instead of
     * stalling the store's commit.
     *
     * This is *lossy*: a skipped slice never runs, so only programs
     * using the software fallback idiom (TCHK bit 62 -> inline
     * recompute -> TCLR) keep their architectural results. The
     * default is the lossless stall policy precisely because the
     * builder workloads rely on slices always running.
     */
    bool skipWhenBusy = false;

    /**
     * Dispatch a token only when no slice of the *same* trigger is
     * running (slices of different triggers still run concurrently),
     * mirroring the DTT machine's per-trigger serialization so the
     * same workload programs behave under both accelerators.
     */
    bool serializePerTrigger = true;

    /** Cycles to initialize a hardware context at slice dispatch. */
    Cycle spawnLatency = 4;
};

} // namespace dttsim::sp
