#pragma once

/**
 * @file
 * Computation-reuse accelerator: the ReuseSense-style comparison
 * machine of the paper's Fig. 12, behind the cpu::Accelerator
 * interface. Built on the shared per-PC reuse buffers
 * (common/reuse_buffer.h); with ReuseConfig::entriesPerPc equal to
 * CoreConfig::reuseEntriesPerPc it reproduces the legacy in-core
 * machine (CoreConfig::reuseBuffer) result for result.
 *
 * The unit spawns no helper threads: it serves the core's fetch
 * probe (a hit bypasses execution — single-cycle ALU-slot issue, no
 * D-cache access) and observes the commit stream only to count the
 * store traffic its invalidation port would have to snoop. Entries
 * are validated by value (ReuseProbe::memValue), so a conflicting
 * store makes the entry miss rather than serve stale data.
 */

#include <memory>

#include "accel/reuse_config.h"
#include "common/reuse_buffer.h"
#include "cpu/accelerator.h"
#include "cpu/executor.h"

namespace dttsim::reuse {

/** The computation-reuse unit as a pluggable accelerator. */
class ReuseUnit final : public cpu::Accelerator
{
  public:
    explicit ReuseUnit(const ReuseConfig &config);

    const ReuseConfig &config() const { return config_; }

    // ----- lifecycle --------------------------------------------------
    void attach(cpu::AccelPort &port) override;
    void reset() override;

    // ----- fetch probe -------------------------------------------------
    bool wantsFetchProbe() const override { return true; }
    bool fetchProbe(std::uint64_t pc, const ReuseProbe &probe) override;

    // ----- reporting ----------------------------------------------------
    cpu::CommitObserver *commitObserver() override { return &snoop_; }

  private:
    /** Commit-stream tap: counts the stores the unit's invalidation
     *  port snoops. Pure accounting — entries are value-validated,
     *  so no state changes here. */
    class StoreSnoop final : public cpu::CommitObserver
    {
      public:
        explicit StoreSnoop(Counter &counter) : counter_(counter) {}
        void
        onCommit(const cpu::StepInfo &info, CtxId ctx) override
        {
            (void)ctx;
            if (info.mem.valid && !info.mem.isLoad)
                ++counter_;
        }
      private:
        Counter &counter_;
    };

    ReuseConfig config_;
    StoreSnoop snoop_;
    std::unique_ptr<ReuseBufferSet> table_;
};

} // namespace dttsim::reuse
