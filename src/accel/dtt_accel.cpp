#include "accel/dtt_accel.h"

#include "sim/faultplan.h"

namespace dttsim::accel {

DttAccel::DttAccel(const dtt::DttConfig &config, int num_contexts)
    : Accelerator(cpu::AccelKind::Dtt, "accel"),
      config_(config),
      numContexts_(num_contexts),
      ctrl_(std::make_unique<dtt::DttController>(config, num_contexts))
{
    stats().counter("faultDeniedSpawnCycles");
}

void
DttAccel::reset()
{
    Accelerator::reset();
    ctrl_ = std::make_unique<dtt::DttController>(config_, numContexts_);
    ctrl_->setFaultPlan(plan());
}

void
DttAccel::setFaultPlan(sim::FaultPlan *plan)
{
    Accelerator::setFaultPlan(plan);
    ctrl_->setFaultPlan(plan);
}

bool
DttAccel::tstoreCommit(TriggerId t, Addr addr, std::uint64_t value,
                       bool silent)
{
    dtt::TstoreOutcome outcome =
        ctrl_->onTstoreCommit(t, addr, value, silent);
    if (outcome == dtt::TstoreOutcome::Stall)
        return true;
    // The fetched tstore retires with any non-stall outcome.
    ctrl_->onTstoreDone(t);
    return false;
}

void
DttAccel::tick()
{
    // Transparent fault: the spawn arbiter denies every context
    // allocation this cycle; pending threads just wait a cycle
    // longer. At rate 1.0 this starves the queue outright (the
    // watchdog's Deadlock case).
    if (plan() != nullptr && !ctrl_->queue().empty()
        && plan()->inject(sim::FaultSite::DenySpawn)) {
        ++stats().counter("faultDeniedSpawnCycles");
        return;
    }
    cpu::AccelPort &p = port();
    for (CtxId ctx = 1; ctx < p.numContexts(); ++ctx) {
        if (!p.contextFree(ctx))
            continue;
        dtt::SpawnRequest req = ctrl_->takeSpawn();
        if (!req.valid)
            return;
        p.startThread(ctx, req.trig, req.entryPc, req.addr, req.value,
                      config_.spawnLatency);
        ctrl_->onSpawned(req.trig, ctx);
    }
}

} // namespace dttsim::accel
