#include "accel/sp_unit.h"

#include "common/log.h"
#include "sim/faultplan.h"

namespace dttsim::sp {

PrecomputeUnit::PrecomputeUnit(const SpConfig &config, int num_contexts)
    : Accelerator(cpu::AccelKind::Sp, "accel"),
      config_(config),
      numContexts_(num_contexts),
      st_(std::make_unique<State>(config, num_contexts))
{
    stats().counter("tokens");
    stats().counter("enqueued");
    stats().counter("skippedSlices");
    stats().counter("stallEvents");
    stats().counter("spawns");
    stats().counter("staleDiscards");
    stats().counter("unregisteredTokens");
    stats().counter("faultDroppedTokens");
    stats().counter("faultSquashRequeues");
    stats().counter("faultDeniedSpawnCycles");
}

void
PrecomputeUnit::reset()
{
    Accelerator::reset();
    st_ = std::make_unique<State>(config_, numContexts_);
}

void
PrecomputeUnit::tregCommit(TriggerId t, std::uint64_t entry_pc)
{
    st_->registry.install(t, entry_pc);
}

void
PrecomputeUnit::tunregCommit(TriggerId t)
{
    st_->registry.remove(t);
}

void
PrecomputeUnit::tclrCommit(TriggerId t)
{
    st_->status.of(t).overflowed = false;
}

bool
PrecomputeUnit::tstoreCommit(TriggerId t, Addr addr,
                             std::uint64_t value, bool silent)
{
    // Precomputation has no notion of a redundant store: every
    // committing triggering store emits a token, silent or not.
    (void)silent;
    ++stats().counter("tokens");

    if (!st_->registry.lookup(t).valid) {
        // A token with no registered slice (e.g. before TREG) is
        // legal and does nothing.
        ++stats().counter("unregisteredTokens");
        tstoreDone(t);
        return false;
    }
    // Lossy fault: the token is lost in flight; the sticky overflow
    // flag is the only record, exactly what the software fallback
    // idiom recovers from.
    if (plan() != nullptr
        && plan()->inject(sim::FaultSite::DropToken)) {
        st_->status.of(t).overflowed = true;
        ++stats().counter("faultDroppedTokens");
        tstoreDone(t);
        return false;
    }

    switch (st_->queue.push(dtt::PendingThread{t, addr, value})) {
      case dtt::EnqueueResult::Enqueued:
      case dtt::EnqueueResult::Coalesced:  // unreachable: coalesce off
        ++stats().counter("enqueued");
        tstoreDone(t);
        return false;
      case dtt::EnqueueResult::Full:
        if (config_.skipWhenBusy) {
            // Skip-one-slice: the backlog is saturated, drop this
            // slice and flag the trigger for the software fallback.
            st_->status.of(t).overflowed = true;
            ++stats().counter("skippedSlices");
            tstoreDone(t);
            return false;
        }
        ++stats().counter("stallEvents");
        return true;  // stall the store's commit
    }
    panic("unreachable");
}

void
PrecomputeUnit::tstoreDone(TriggerId t)
{
    auto &s = st_->status.of(t);
    if (s.inflightTstores <= 0)
        panic("tstore inflight underflow for trigger %d", t);
    --s.inflightTstores;
}

void
PrecomputeUnit::tretCommit(CtxId ctx)
{
    st_->status.markDone(ctx);
}

void
PrecomputeUnit::tstoreFetched(TriggerId t)
{
    ++st_->status.of(t).inflightTstores;
}

bool
PrecomputeUnit::waitSatisfied(TriggerId t) const
{
    const dtt::TriggerStatus &s = st_->status.of(t);
    return st_->queue.pendingFor(t) == 0 && s.running == 0
        && s.inflightTstores == 0;
}

std::int64_t
PrecomputeUnit::chk(TriggerId t) const
{
    const dtt::TriggerStatus &s = st_->status.of(t);
    std::int64_t outstanding = st_->queue.pendingFor(t) + s.running
        + s.inflightTstores;
    if (s.overflowed)
        outstanding |= std::int64_t(1) << 62;
    return outstanding;
}

void
PrecomputeUnit::tick()
{
    // Transparent fault: the dispatch port is busy this cycle;
    // pending tokens just wait a cycle longer.
    if (plan() != nullptr && !st_->queue.empty()
        && plan()->inject(sim::FaultSite::DenySpawn)) {
        ++stats().counter("faultDeniedSpawnCycles");
        return;
    }
    cpu::AccelPort &p = port();
    for (CtxId ctx = 1; ctx < p.numContexts(); ++ctx) {
        if (!p.contextFree(ctx))
            continue;
        // Take the oldest dispatchable token, discarding tokens whose
        // slice was unregistered after the token was emitted.
        dtt::PendingThread token;
        const dtt::RegistryEntry *entry = nullptr;
        while (!st_->queue.empty()) {
            std::optional<dtt::PendingThread> picked =
                st_->queue.popFirst([&](const dtt::PendingThread &tk) {
                    if (!config_.serializePerTrigger)
                        return true;
                    return st_->status.of(tk.trig).running == 0;
                });
            if (!picked)
                return;  // all pending triggers busy
            const dtt::RegistryEntry &e =
                st_->registry.lookup(picked->trig);
            if (!e.valid) {
                ++stats().counter("staleDiscards");
                continue;
            }
            token = *picked;
            entry = &e;
            break;
        }
        if (entry == nullptr)
            return;  // queue drained
        ++stats().counter("spawns");
        p.startThread(ctx, token.trig, entry->entryPc, token.addr,
                      token.value, config_.spawnLatency);
        st_->status.markRunning(token.trig, ctx);
    }
}

void
PrecomputeUnit::threadSquashed(CtxId ctx, Addr addr,
                               std::uint64_t value)
{
    TriggerId t = st_->status.markDone(ctx);
    if (!st_->registry.lookup(t).valid) {
        ++stats().counter("staleDiscards");
        return;
    }
    st_->queue.unpop(dtt::PendingThread{t, addr, value});
    ++stats().counter("faultSquashRequeues");
}

} // namespace dttsim::sp
