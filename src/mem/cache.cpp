#include "mem/cache.h"

#include <bit>

#include "common/log.h"

namespace dttsim::mem {

Cache::Cache(const CacheConfig &config)
    : config_(config), stats_(config.name),
      accesses_(&stats_.counter("accesses")),
      hits_(&stats_.counter("hits")),
      misses_(&stats_.counter("misses")),
      evictions_(&stats_.counter("evictions")),
      writebacks_(&stats_.counter("writebacks"))
{
    if (config_.lineBytes == 0
        || (config_.lineBytes & (config_.lineBytes - 1)) != 0)
        fatal("%s: line size must be a power of two",
              config_.name.c_str());
    if (config_.assoc == 0)
        fatal("%s: associativity must be >= 1", config_.name.c_str());
    std::uint64_t lines = config_.sizeBytes / config_.lineBytes;
    if (lines == 0 || lines % config_.assoc != 0)
        fatal("%s: size/line/assoc geometry invalid",
              config_.name.c_str());
    numSets_ = static_cast<std::uint32_t>(lines / config_.assoc);
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("%s: number of sets (%u) must be a power of two",
              config_.name.c_str(), numSets_);
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(std::uint64_t(config_.lineBytes)));
    setMask_ = numSets_ - 1;
    lines_.resize(std::size_t(numSets_) * config_.assoc);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & setMask_;
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

CacheAccess
Cache::access(Addr addr, bool is_write)
{
    ++*accesses_;
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *ways = &lines_[set * config_.assoc];

    CacheAccess result;
    Line *victim = &ways[0];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = ways[w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock_;
            line.dirty = line.dirty || is_write;
            ++*hits_;
            result.hit = true;
            return result;
        }
        // Track the LRU (or first invalid) way as fill victim.
        if (!line.valid) {
            if (victim->valid || line.lru < victim->lru)
                victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++*misses_;
    if (victim->valid) {
        ++*evictions_;
        if (victim->dirty) {
            ++*writebacks_;
            result.writebackVictim = true;
        }
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    const Line *ways = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace dttsim::mem
