#include "mem/memory.h"

#include <cstring>
#include <utility>

#include "common/log.h"

namespace dttsim::mem {

namespace {

/** All-zero page returned for reads of untouched memory. */
const Memory::Page kZeroPage{};

/** Initial flat-index capacity (slots; power of two). */
constexpr std::size_t kInitialIndexSize = 64;

} // namespace

Memory::Memory()
    : index_(kInitialIndexSize), indexMask_(kInitialIndexSize - 1)
{
}

Memory::Memory(Memory &&other) noexcept
    : pages_(std::move(other.pages_)),
      index_(std::move(other.index_)),
      indexMask_(other.indexMask_),
      lastReadPage_(other.lastReadPage_),
      lastReadData_(other.lastReadData_),
      lastWritePage_(other.lastWritePage_),
      lastWriteData_(other.lastWriteData_)
{
    // The moved-from object no longer owns the pages its caches point
    // at; reset it to a valid empty memory.
    other.index_.assign(kInitialIndexSize, Slot{});
    other.indexMask_ = kInitialIndexSize - 1;
    other.lastReadPage_ = ~0ull;
    other.lastReadData_ = nullptr;
    other.lastWritePage_ = ~0ull;
    other.lastWriteData_ = nullptr;
}

Memory &
Memory::operator=(Memory &&other) noexcept
{
    if (this == &other)
        return *this;
    pages_ = std::move(other.pages_);
    index_ = std::move(other.index_);
    indexMask_ = other.indexMask_;
    lastReadPage_ = other.lastReadPage_;
    lastReadData_ = other.lastReadData_;
    lastWritePage_ = other.lastWritePage_;
    lastWriteData_ = other.lastWriteData_;
    other.index_.assign(kInitialIndexSize, Slot{});
    other.indexMask_ = kInitialIndexSize - 1;
    other.lastReadPage_ = ~0ull;
    other.lastReadData_ = nullptr;
    other.lastWritePage_ = ~0ull;
    other.lastWriteData_ = nullptr;
    return *this;
}

const std::uint8_t *
Memory::lookupPage(std::uint64_t pn) const
{
    std::size_t i = hashPage(pn, indexMask_);
    for (;; i = (i + 1) & indexMask_) {
        const Slot &s = index_[i];
        if (s.data == nullptr)
            break;  // untouched page: reads as zero
        if (s.pageNum == pn) {
            lastReadPage_ = pn;
            lastReadData_ = s.data;
            return s.data;
        }
    }
    lastReadPage_ = pn;
    lastReadData_ = kZeroPage.data();
    return kZeroPage.data();
}

std::uint8_t *
Memory::lookupPageForWrite(std::uint64_t pn)
{
    std::size_t i = hashPage(pn, indexMask_);
    for (;; i = (i + 1) & indexMask_) {
        Slot &s = index_[i];
        if (s.data == nullptr)
            break;
        if (s.pageNum == pn) {
            lastWritePage_ = pn;
            lastWriteData_ = s.data;
            return s.data;
        }
    }
    return allocatePage(pn);
}

std::uint8_t *
Memory::allocatePage(std::uint64_t pn)
{
    pages_.push_back(std::make_unique<Page>());
    std::uint8_t *data = pages_.back()->data();
    std::memset(data, 0, kPageSize);

    if ((pages_.size() + 1) * 4 > index_.size() * 3)
        grow();
    std::size_t i = hashPage(pn, indexMask_);
    while (index_[i].data != nullptr)
        i = (i + 1) & indexMask_;
    index_[i] = Slot{pn, data};

    lastWritePage_ = pn;
    lastWriteData_ = data;
    // A read of this page may be cached as the zero page; refresh so
    // the next read sees the freshly allocated backing store.
    lastReadPage_ = pn;
    lastReadData_ = data;
    return data;
}

void
Memory::grow()
{
    std::vector<Slot> bigger(index_.size() * 2);
    std::size_t mask = bigger.size() - 1;
    for (const Slot &s : index_) {
        if (s.data == nullptr)
            continue;
        std::size_t i = hashPage(s.pageNum, mask);
        while (bigger[i].data != nullptr)
            i = (i + 1) & mask;
        bigger[i] = s;
    }
    index_ = std::move(bigger);
    indexMask_ = mask;
}

std::uint32_t
Memory::read32(Addr a) const
{
    std::uint64_t off = a & (kPageSize - 1);
    if (off + 4 <= kPageSize) {
        std::uint32_t v;
        std::memcpy(&v, pageFor(a) + off, 4);
        return v;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(read8(a + std::uint64_t(i))) << (8 * i);
    return v;
}

std::uint64_t
Memory::read64(Addr a) const
{
    // Fast path: access fully inside one page.
    std::uint64_t off = a & (kPageSize - 1);
    if (off + 8 <= kPageSize) {
        std::uint64_t v;
        std::memcpy(&v, pageFor(a) + off, 8);
        return v;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(read8(a + std::uint64_t(i))) << (8 * i);
    return v;
}

double
Memory::readDouble(Addr a) const
{
    std::uint64_t v = read64(a);
    double d;
    std::memcpy(&d, &v, 8);
    return d;
}

void
Memory::write32(Addr a, std::uint32_t v)
{
    std::uint64_t off = a & (kPageSize - 1);
    if (off + 4 <= kPageSize) {
        std::memcpy(pageForWrite(a) + off, &v, 4);
        return;
    }
    for (int i = 0; i < 4; ++i)
        write8(a + std::uint64_t(i), std::uint8_t(v >> (8 * i)));
}

void
Memory::write64(Addr a, std::uint64_t v)
{
    std::uint64_t off = a & (kPageSize - 1);
    if (off + 8 <= kPageSize) {
        std::memcpy(pageForWrite(a) + off, &v, 8);
        return;
    }
    for (int i = 0; i < 8; ++i)
        write8(a + std::uint64_t(i), std::uint8_t(v >> (8 * i)));
}

void
Memory::writeDouble(Addr a, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    write64(a, bits);
}

std::uint64_t
Memory::read(Addr a, int size) const
{
    switch (size) {
      case 1: return read8(a);
      case 4: return read32(a);
      case 8: return read64(a);
      default: panic("Memory::read: bad size %d", size);
    }
}

void
Memory::write(Addr a, int size, std::uint64_t v)
{
    switch (size) {
      case 1: write8(a, std::uint8_t(v)); break;
      case 4: write32(a, std::uint32_t(v)); break;
      case 8: write64(a, v); break;
      default: panic("Memory::write: bad size %d", size);
    }
}

void
Memory::writeBytes(Addr a, const std::uint8_t *src, std::uint64_t n)
{
    // Page-at-a-time memcpy (program loading writes whole data
    // segments; byte-wise write8 was a measurable startup cost for
    // scaled working sets).
    while (n > 0) {
        std::uint64_t off = a & (kPageSize - 1);
        std::uint64_t chunk = kPageSize - off;
        if (chunk > n)
            chunk = n;
        std::memcpy(pageForWrite(a) + off, src, chunk);
        a += chunk;
        src += chunk;
        n -= chunk;
    }
}

} // namespace dttsim::mem
