#include "mem/memory.h"

#include <cstring>

#include "common/log.h"

namespace dttsim::mem {

namespace {

/** All-zero page returned for reads of untouched memory. */
const Memory::Page kZeroPage{};

} // namespace

const std::uint8_t *
Memory::pageFor(Addr a) const
{
    auto it = pages_.find(a >> kPageBits);
    return it == pages_.end() ? kZeroPage.data() : it->second->data();
}

std::uint8_t *
Memory::pageForWrite(Addr a)
{
    auto &slot = pages_[a >> kPageBits];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return slot->data();
}

std::uint8_t
Memory::read8(Addr a) const
{
    return pageFor(a)[a & (kPageSize - 1)];
}

std::uint32_t
Memory::read32(Addr a) const
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(read8(a + std::uint64_t(i))) << (8 * i);
    return v;
}

std::uint64_t
Memory::read64(Addr a) const
{
    // Fast path: access fully inside one page.
    std::uint64_t off = a & (kPageSize - 1);
    if (off + 8 <= kPageSize) {
        std::uint64_t v;
        std::memcpy(&v, pageFor(a) + off, 8);
        return v;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(read8(a + std::uint64_t(i))) << (8 * i);
    return v;
}

double
Memory::readDouble(Addr a) const
{
    std::uint64_t v = read64(a);
    double d;
    std::memcpy(&d, &v, 8);
    return d;
}

void
Memory::write8(Addr a, std::uint8_t v)
{
    pageForWrite(a)[a & (kPageSize - 1)] = v;
}

void
Memory::write32(Addr a, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        write8(a + std::uint64_t(i), std::uint8_t(v >> (8 * i)));
}

void
Memory::write64(Addr a, std::uint64_t v)
{
    std::uint64_t off = a & (kPageSize - 1);
    if (off + 8 <= kPageSize) {
        std::memcpy(pageForWrite(a) + off, &v, 8);
        return;
    }
    for (int i = 0; i < 8; ++i)
        write8(a + std::uint64_t(i), std::uint8_t(v >> (8 * i)));
}

void
Memory::writeDouble(Addr a, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    write64(a, bits);
}

std::uint64_t
Memory::read(Addr a, int size) const
{
    switch (size) {
      case 1: return read8(a);
      case 4: return read32(a);
      case 8: return read64(a);
      default: panic("Memory::read: bad size %d", size);
    }
}

void
Memory::write(Addr a, int size, std::uint64_t v)
{
    switch (size) {
      case 1: write8(a, std::uint8_t(v)); break;
      case 4: write32(a, std::uint32_t(v)); break;
      case 8: write64(a, v); break;
      default: panic("Memory::write: bad size %d", size);
    }
}

void
Memory::writeBytes(Addr a, const std::uint8_t *src, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        write8(a + i, src[i]);
}

} // namespace dttsim::mem
