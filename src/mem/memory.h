#pragma once

/**
 * @file
 * Sparse 64-bit simulated physical memory. Backing pages are allocated
 * on first touch; untouched memory reads as zero. This is the single
 * functional store shared by all hardware contexts (main thread and
 * data-triggered threads communicate through it).
 *
 * Hot-path design (docs/PERFORMANCE.md): every access first probes a
 * one-entry last-page translation cache (separate read and write
 * entries, like a µTLB), and on miss falls back to a flat
 * open-addressed page index (power-of-two sized, linear probing)
 * instead of a node-based std::unordered_map. Pages themselves are
 * heap-allocated once and never move, so cached pointers stay valid
 * across index growth.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace dttsim::mem {

/** Byte-addressable sparse memory. */
class Memory
{
  public:
    static constexpr std::uint64_t kPageBits = 12;
    static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

    Memory();
    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;
    Memory(Memory &&other) noexcept;
    Memory &operator=(Memory &&other) noexcept;

    std::uint8_t
    read8(Addr a) const
    {
        return pageFor(a)[a & (kPageSize - 1)];
    }

    std::uint32_t read32(Addr a) const;
    std::uint64_t read64(Addr a) const;
    double readDouble(Addr a) const;

    void
    write8(Addr a, std::uint8_t v)
    {
        pageForWrite(a)[a & (kPageSize - 1)] = v;
    }

    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    void writeDouble(Addr a, double v);

    /** Sized access used by the executor: size in {1,4,8}. */
    std::uint64_t read(Addr a, int size) const;
    void write(Addr a, int size, std::uint64_t v);

    /** Bulk initialization (program loading). */
    void writeBytes(Addr a, const std::uint8_t *src, std::uint64_t n);

    /** Number of pages currently allocated. */
    std::size_t pagesAllocated() const { return pages_.size(); }

    /** Backing page type (exposed for the zero-page constant). */
    using Page = std::array<std::uint8_t, kPageSize>;

  private:
    /** One slot of the flat page index: data == nullptr means empty. */
    struct Slot
    {
        std::uint64_t pageNum = 0;
        std::uint8_t *data = nullptr;
    };

    /**
     * Translation for @p a: the last-read-page cache first, then the
     * flat index; untouched pages resolve to the shared zero page.
     */
    const std::uint8_t *
    pageFor(Addr a) const
    {
        std::uint64_t pn = a >> kPageBits;
        if (pn == lastReadPage_)
            return lastReadData_;
        return lookupPage(pn);
    }

    /** Same for writes, allocating the page on first touch. */
    std::uint8_t *
    pageForWrite(Addr a)
    {
        std::uint64_t pn = a >> kPageBits;
        if (pn == lastWritePage_)
            return lastWriteData_;
        return lookupPageForWrite(pn);
    }

    const std::uint8_t *lookupPage(std::uint64_t pn) const;
    std::uint8_t *lookupPageForWrite(std::uint64_t pn);
    std::uint8_t *allocatePage(std::uint64_t pn);
    void grow();

    static std::size_t
    hashPage(std::uint64_t pn, std::size_t mask)
    {
        // Fibonacci hashing: pages cluster (text, data, stacks), so
        // spread the low bits across the table.
        return static_cast<std::size_t>(
                   (pn * 0x9e3779b97f4a7c15ull) >> 40) & mask;
    }

    std::vector<std::unique_ptr<Page>> pages_;  ///< ownership; stable
    std::vector<Slot> index_;                   ///< open-addressed
    std::size_t indexMask_ = 0;

    // One-entry translation caches (read side is logically const).
    mutable std::uint64_t lastReadPage_ = ~0ull;
    mutable const std::uint8_t *lastReadData_ = nullptr;
    std::uint64_t lastWritePage_ = ~0ull;
    std::uint8_t *lastWriteData_ = nullptr;
};

} // namespace dttsim::mem
