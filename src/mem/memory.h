#pragma once

/**
 * @file
 * Sparse 64-bit simulated physical memory. Backing pages are allocated
 * on first touch; untouched memory reads as zero. This is the single
 * functional store shared by all hardware contexts (main thread and
 * data-triggered threads communicate through it).
 */

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace dttsim::mem {

/** Byte-addressable sparse memory. */
class Memory
{
  public:
    static constexpr std::uint64_t kPageBits = 12;
    static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

    Memory() = default;
    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;
    Memory(Memory &&) = default;
    Memory &operator=(Memory &&) = default;

    std::uint8_t read8(Addr a) const;
    std::uint32_t read32(Addr a) const;
    std::uint64_t read64(Addr a) const;
    double readDouble(Addr a) const;

    void write8(Addr a, std::uint8_t v);
    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    void writeDouble(Addr a, double v);

    /** Sized access used by the executor: size in {1,4,8}. */
    std::uint64_t read(Addr a, int size) const;
    void write(Addr a, int size, std::uint64_t v);

    /** Bulk initialization (program loading). */
    void writeBytes(Addr a, const std::uint8_t *src, std::uint64_t n);

    /** Number of pages currently allocated. */
    std::size_t pagesAllocated() const { return pages_.size(); }

    /** Backing page type (exposed for the zero-page constant). */
    using Page = std::array<std::uint8_t, kPageSize>;

  private:
    const std::uint8_t *pageFor(Addr a) const;
    std::uint8_t *pageForWrite(Addr a);

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace dttsim::mem
