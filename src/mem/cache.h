#pragma once

/**
 * @file
 * Timing-only set-associative cache model (tags, LRU, write-back
 * write-allocate). Data values live in mem::Memory; caches only decide
 * latency, so they track tags and dirty bits, not bytes.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace dttsim::mem {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 64;
    Cycle hitLatency = 2;
};

/** Result of a single cache lookup-with-fill. */
struct CacheAccess
{
    bool hit = false;
    bool writebackVictim = false;  ///< a dirty line was evicted
};

/** One level of set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    // Movable (the cached counter pointers below stay valid: moving a
    // StatGroup moves its map's nodes without relocating them), but
    // not copyable — a copy's pointers would alias the source's stats.
    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;
    Cache(Cache &&) = default;
    Cache &operator=(Cache &&) = default;

    /**
     * Look up @p addr; on miss, fill the line (evicting LRU).
     * @param is_write marks the line dirty on hit or fill.
     */
    CacheAccess access(Addr addr, bool is_write);

    /** Probe without modifying state (for tests). */
    bool contains(Addr addr) const;

    /** Invalidate everything (keeps stats). */
    void flush();

    const CacheConfig &config() const { return config_; }
    Cycle hitLatency() const { return config_.hitLatency; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    std::uint64_t accesses() const { return stats_.get("accesses"); }
    std::uint64_t misses() const { return stats_.get("misses"); }
    double missRate() const
    {
        return ratio(misses(), accesses());
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;  ///< larger = more recently used
    };

    std::uint64_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    CacheConfig config_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_;
    std::uint64_t setMask_;    ///< numSets_ - 1 (power-of-two sets)
    std::vector<Line> lines_;  ///< numSets_ x assoc, row-major
    std::uint64_t lruClock_ = 0;
    StatGroup stats_;
    // Hot-path counters resolved once at construction (StatGroup's
    // string-keyed lookup is far too slow for the per-access path;
    // map nodes are stable so the pointers live as long as stats_).
    Counter *accesses_;
    Counter *hits_;
    Counter *misses_;
    Counter *evictions_;
    Counter *writebacks_;
};

} // namespace dttsim::mem
