#pragma once

/**
 * @file
 * Three-level cache hierarchy: split L1I/L1D, unified L2, fixed-
 * latency DRAM. Returns the total access latency seen by the core and
 * keeps per-level statistics. All hardware contexts (main thread and
 * DTTs running on SMT contexts of the same core) share this hierarchy,
 * as in the paper's machine model.
 *
 * Miss timing is modeled with in-flight fills and finite MSHRs:
 * a second access to a line whose fill is outstanding merges into it
 * (paying the remaining latency), and when all MSHRs of a level are
 * busy a new miss waits for the earliest release. Disable
 * `modelFills` for the older idealized model (tags fill instantly).
 */

#include <cstdint>
#include <vector>

#include "mem/cache.h"

namespace dttsim::mem {

/** Full-hierarchy configuration. */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 4, 64, 1};
    CacheConfig l1d{"l1d", 32 * 1024, 4, 64, 2};
    CacheConfig l2{"l2", 1024 * 1024, 8, 64, 12};
    Cycle memLatency = 200;

    /** Track in-flight fills + finite MSHRs (see file comment). */
    bool modelFills = true;
    /** Outstanding-miss registers per L1 cache (and for the L2). */
    int mshrs = 16;
    /** Next-line prefetch into L2 on L1D misses. */
    bool nextLinePrefetch = false;
};

/** The memory-side timing model used by the OOO core. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /**
     * Data access (load or store) issued at cycle @p now; returns
     * total latency in cycles.
     */
    Cycle accessData(Addr addr, bool is_write, Cycle now = 0);

    /** Instruction fetch access at cycle @p now. */
    Cycle accessInst(Addr addr, Cycle now = 0);

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const HierarchyConfig &config() const { return config_; }

    /** Total accesses that went to DRAM. */
    std::uint64_t memAccesses() const { return memAccesses_; }

    /** Misses merged into an in-flight fill of the same line. */
    std::uint64_t fillMerges() const { return fillMerges_; }

    /** Extra cycles spent waiting for a free MSHR. */
    std::uint64_t mshrStallCycles() const { return mshrStalls_; }

    /** Prefetches issued (next-line). */
    std::uint64_t prefetches() const { return prefetches_; }

    /** Dynamic-activity proxy for the energy figure: weighted access
     *  counts (L1 = 1, L2 = 4, DRAM = 40 units per access). */
    std::uint64_t activityUnits() const;

  private:
    /** Outstanding fills of one cache level. */
    struct FillTracker
    {
        struct Fill
        {
            std::uint64_t line = 0;
            Cycle readyAt = 0;
        };
        std::vector<Fill> fills;

        /** Remaining latency if @p line is already inbound, else 0. */
        Cycle pendingFor(std::uint64_t line, Cycle now) const;

        /** Cycles until an MSHR frees up (0 if one is available). */
        Cycle allocDelay(int mshrs, Cycle now);

        void add(std::uint64_t line, Cycle ready_at);
    };

    /** L2-and-below latency for a line (shared by I and D paths). */
    Cycle l2Latency(std::uint64_t line, Cycle now);

    HierarchyConfig config_;
    std::uint32_t lineShift_;  ///< log2(lineBytes), uniform per level
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    FillTracker l1iFills_;
    FillTracker l1dFills_;
    FillTracker l2Fills_;
    std::uint64_t memAccesses_ = 0;
    std::uint64_t fillMerges_ = 0;
    std::uint64_t mshrStalls_ = 0;
    std::uint64_t prefetches_ = 0;
};

} // namespace dttsim::mem
