#include "mem/hierarchy.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace dttsim::mem {

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
    if (config_.l1i.lineBytes != config_.l2.lineBytes
        || config_.l1d.lineBytes != config_.l2.lineBytes)
        fatal("hierarchy requires a uniform line size across levels");
    if (config_.mshrs < 1)
        fatal("hierarchy needs at least one MSHR per level");
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(std::uint64_t(config_.l2.lineBytes)));
}

Cycle
Hierarchy::FillTracker::pendingFor(std::uint64_t line, Cycle now) const
{
    for (const Fill &f : fills)
        if (f.line == line && f.readyAt > now)
            return f.readyAt - now;
    return 0;
}

Cycle
Hierarchy::FillTracker::allocDelay(int mshrs, Cycle now)
{
    // Compact released entries opportunistically.
    std::erase_if(fills, [now](const Fill &f) {
        return f.readyAt <= now;
    });
    if (static_cast<int>(fills.size()) < mshrs)
        return 0;
    Cycle earliest = fills.front().readyAt;
    for (const Fill &f : fills)
        earliest = std::min(earliest, f.readyAt);
    return earliest - now;
}

void
Hierarchy::FillTracker::add(std::uint64_t line, Cycle ready_at)
{
    fills.push_back(Fill{line, ready_at});
}

Cycle
Hierarchy::l2Latency(std::uint64_t line, Cycle now)
{
    Cycle lat = l2_.hitLatency();
    // Tag lookup uses the line's byte address.
    Addr addr = line << lineShift_;
    CacheAccess l2 = l2_.access(addr, false);
    if (l2.hit)
        return lat;
    if (config_.modelFills) {
        if (Cycle pending = l2Fills_.pendingFor(line, now)) {
            ++fillMerges_;
            return lat + pending;
        }
        Cycle wait = l2Fills_.allocDelay(config_.mshrs, now);
        mshrStalls_ += wait;
        ++memAccesses_;
        Cycle total = lat + wait + config_.memLatency;
        l2Fills_.add(line, now + total);
        return total;
    }
    ++memAccesses_;
    return lat + config_.memLatency;
}

Cycle
Hierarchy::accessData(Addr addr, bool is_write, Cycle now)
{
    std::uint64_t line = addr >> lineShift_;
    Cycle lat = l1d_.hitLatency();
    CacheAccess l1 = l1d_.access(addr, is_write);
    if (l1.hit) {
        if (config_.modelFills) {
            // The tag may belong to a fill still in flight.
            if (Cycle pending = l1dFills_.pendingFor(line, now)) {
                ++fillMerges_;
                return lat + pending;
            }
        }
        return lat;
    }

    Cycle wait = 0;
    if (config_.modelFills) {
        wait = l1dFills_.allocDelay(config_.mshrs, now);
        mshrStalls_ += wait;
    }
    Cycle below = l2Latency(line, now + wait);
    Cycle total = lat + wait + below;
    if (config_.modelFills)
        l1dFills_.add(line, now + total);

    if (config_.nextLinePrefetch) {
        // Pull the next line toward L2 (tag install + fill timing).
        std::uint64_t next_line = line + 1;
        Addr next_addr = next_line << lineShift_;
        if (!l2_.contains(next_addr)
            && (!config_.modelFills
                || l2Fills_.pendingFor(next_line, now) == 0)) {
            ++prefetches_;
            (void)l2Latency(next_line, now);
        }
    }
    return total;
}

Cycle
Hierarchy::accessInst(Addr addr, Cycle now)
{
    std::uint64_t line = addr >> lineShift_;
    Cycle lat = l1i_.hitLatency();
    CacheAccess l1 = l1i_.access(addr, false);
    if (l1.hit) {
        if (config_.modelFills) {
            if (Cycle pending = l1iFills_.pendingFor(line, now)) {
                ++fillMerges_;
                return lat + pending;
            }
        }
        return lat;
    }
    Cycle wait = 0;
    if (config_.modelFills) {
        wait = l1iFills_.allocDelay(config_.mshrs, now);
        mshrStalls_ += wait;
    }
    Cycle below = l2Latency(line, now + wait);
    Cycle total = lat + wait + below;
    if (config_.modelFills)
        l1iFills_.add(line, now + total);
    return total;
}

std::uint64_t
Hierarchy::activityUnits() const
{
    std::uint64_t units = 0;
    units += l1i_.accesses() + l1d_.accesses();
    units += 4 * l2_.accesses();
    units += 40 * memAccesses_;
    return units;
}

} // namespace dttsim::mem
