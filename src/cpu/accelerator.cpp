#include "cpu/accelerator.h"

#include "common/log.h"

namespace dttsim::cpu {

const char *
accelKindName(AccelKind k)
{
    switch (k) {
    case AccelKind::None: return "none";
    case AccelKind::Dtt: return "dtt";
    case AccelKind::Sp: return "sp";
    case AccelKind::Reuse: return "reuse";
    }
    return "?";
}

std::optional<AccelKind>
accelKindFromName(const std::string &name)
{
    for (AccelKind k : {AccelKind::None, AccelKind::Dtt, AccelKind::Sp,
                        AccelKind::Reuse})
        if (name == accelKindName(k))
            return k;
    return std::nullopt;
}

void
Accelerator::attach(AccelPort &port)
{
    if (port_ == &port)
        return;  // idempotent re-attach
    if (port_ != nullptr)
        fatal("%s accelerator already attached to another core; "
              "construct one accelerator per core",
              accelKindName(kind_));
    port_ = &port;
}

void
Accelerator::reset()
{
    stats_.reset();
}

AccelPort &
Accelerator::port() const
{
    if (port_ == nullptr)
        panic("%s accelerator used before attach()",
              accelKindName(kind_));
    return *port_;
}

} // namespace dttsim::cpu
