#pragma once

/**
 * @file
 * Functional execution of dttsim instructions: the semantic reference
 * for the ISA. Used directly by the redundancy profiler and the
 * FunctionalRunner (which runs DTT handlers inline, synchronously),
 * and by the OOO timing core as its execute stage.
 */

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.h"
#include "cpu/arch_state.h"
#include "isa/program.h"
#include "mem/memory.h"

namespace dttsim::cpu {

/**
 * Callbacks through which the executor reports DTT-extension events.
 * The timing simulator routes these to the DttController; the
 * FunctionalRunner services them inline.
 */
class DttHooks
{
  public:
    virtual ~DttHooks() = default;

    /** TSTORE committed. @param silent old == new (no trigger). */
    virtual void
    tstore(TriggerId t, Addr addr, std::uint64_t old_val,
           std::uint64_t new_val, bool silent)
    {
        (void)t; (void)addr; (void)old_val; (void)new_val; (void)silent;
    }

    /** TREG: attach @p entry_pc to trigger @p t. */
    virtual void treg(TriggerId t, std::uint64_t entry_pc)
    {
        (void)t; (void)entry_pc;
    }

    /** TUNREG: detach trigger @p t. */
    virtual void tunreg(TriggerId t) { (void)t; }

    /** TCHK result: outstanding-work count, overflow flag in bit 62. */
    virtual std::int64_t chk(TriggerId t) { (void)t; return 0; }

    /** TCLR: clear trigger @p t's sticky overflow flag. */
    virtual void tclr(TriggerId t) { (void)t; }
};

struct StepInfo;

/**
 * Commit-time observation hook: a core calls onCommit() for every
 * instruction it retires, in per-context program order. Declared here
 * (not in profile/) so cores can carry the hook without depending on
 * any profiler; the canonical implementation is
 * profile::ShadowProfiler. Cores keep the pointer null by default —
 * the disabled cost is one branch per commit.
 */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;

    /** @p ctx is the committing hardware context (0 = main thread). */
    virtual void onCommit(const StepInfo &info, CtxId ctx) = 0;
};

/** Memory side-effects of one executed instruction. */
struct MemEffect
{
    bool valid = false;
    bool isLoad = false;
    Addr addr = 0;
    int size = 0;
    std::uint64_t value = 0;    ///< loaded or stored value (sized)
    std::uint64_t oldValue = 0; ///< pre-store memory contents (sized)
};

/** Everything the caller needs to know about one executed step. */
struct StepInfo
{
    isa::Inst inst;
    std::uint64_t pc = 0;
    std::uint64_t nextPc = 0;
    bool isControl = false;
    bool taken = false;      ///< control transfer redirected the PC
    bool halted = false;     ///< HALT executed
    bool isTret = false;     ///< TRET executed
    bool isTwait = false;
    MemEffect mem;
    // tstore decomposition (mem also valid for tstores)
    bool isTstore = false;
    bool silent = false;
    TriggerId trig = invalidTrigger;
};

/**
 * Execute the instruction at @p state.pc, updating @p state and
 * @p memory. DTT events are reported through @p hooks (may be null
 * for programs without the extension). TWAIT executes as a no-op at
 * this level — scheduling/blocking is the caller's job.
 */
StepInfo step(ArchState &state, mem::Memory &memory,
              const isa::Program &prog, DttHooks *hooks);

/** Copy a program's initialized data chunks into simulated memory. */
void loadData(const isa::Program &prog, mem::Memory &memory);

/** Stack pointer assigned to hardware context @p ctx. */
std::uint64_t stackFor(CtxId ctx);

/** Outcome of a FunctionalRunner run. */
struct FuncRunResult
{
    std::uint64_t mainInstructions = 0;
    std::uint64_t dttInstructions = 0;
    std::uint64_t dttRuns = 0;       ///< handler invocations
    std::uint64_t silentTstores = 0;
    std::uint64_t tstores = 0;
    bool halted = false;
};

/**
 * Functional-only whole-program runner with *inline* DTT semantics:
 * every non-silent triggering store immediately runs the registered
 * handler to completion (nested triggers allowed up to a depth limit).
 * This is the architectural reference model: the timing simulator must
 * reach the same final memory state for well-formed DTT programs
 * (handlers idempotent in current memory state, consumers fenced by
 * TWAIT).
 */
class FunctionalRunner : public DttHooks
{
  public:
    /** Per-step observer: step info plus handler nesting depth
     *  (0 = main thread). */
    using Observer = std::function<void(const StepInfo &, int depth)>;

    /** The runner owns a copy of @p prog (temporaries are safe). */
    explicit FunctionalRunner(isa::Program prog);

    /** Run until HALT or @p max_insts total instructions. */
    FuncRunResult run(std::uint64_t max_insts = 1ull << 32);

    mem::Memory &memory() { return memory_; }
    const ArchState &mainState() const { return main_; }
    void setObserver(Observer obs) { observer_ = std::move(obs); }

    // DttHooks: inline servicing.
    void tstore(TriggerId t, Addr addr, std::uint64_t old_val,
                std::uint64_t new_val, bool silent) override;
    void treg(TriggerId t, std::uint64_t entry_pc) override;
    void tunreg(TriggerId t) override;
    std::int64_t chk(TriggerId t) override { (void)t; return 0; }

  private:
    void runHandler(std::uint64_t entry_pc, Addr addr,
                    std::uint64_t value, int depth);

    isa::Program prog_;
    mem::Memory memory_;
    ArchState main_;
    std::unordered_map<TriggerId, std::uint64_t> registry_;
    Observer observer_;
    FuncRunResult result_;
    std::uint64_t budget_ = 0;
    int curDepth_ = 0;
    static constexpr int kMaxDepth = 8;
};

} // namespace dttsim::cpu
