#include "cpu/bpred.h"

#include "common/log.h"

namespace dttsim::cpu {

namespace {

bool
isCall(const isa::Inst &inst)
{
    return (inst.op == isa::Opcode::JAL || inst.op == isa::Opcode::JALR)
        && inst.rd == 1;  // writes ra
}

bool
isReturn(const isa::Inst &inst)
{
    return inst.op == isa::Opcode::JALR && inst.rd == 0 && inst.rs1 == 1;
}

} // namespace

Bpred::Bpred(const BpredConfig &config)
    : config_(config),
      historyMask_((1ull << config.historyBits) - 1),
      counters_(1ull << config.historyBits, 1),  // weakly not-taken
      btb_(static_cast<std::size_t>(config.btbEntries)),
      history_(static_cast<std::size_t>(config.numContexts), 0),
      ras_(static_cast<std::size_t>(config.numContexts)),
      stats_("bpred")
{
    stats_.counter("condBranches");
    stats_.counter("condMispredicts");
    stats_.counter("indirects");
    stats_.counter("indirectMispredicts");
    stats_.counter("rasHits");
}

std::uint64_t
Bpred::gshareIndex(CtxId ctx, std::uint64_t pc) const
{
    return (pc ^ history_[static_cast<std::size_t>(ctx)]) & historyMask_;
}

Prediction
Bpred::predict(CtxId ctx, std::uint64_t pc, const isa::Inst &inst)
{
    Prediction p;
    switch (inst.op) {
      case isa::Opcode::JAL:
        p.taken = true;
        p.target = static_cast<std::uint64_t>(inst.imm);
        return p;
      case isa::Opcode::JALR: {
        p.taken = true;
        auto &ras = ras_[static_cast<std::size_t>(ctx)];
        if (isReturn(inst) && !ras.empty()) {
            p.target = ras.back();
            return p;
        }
        const BtbEntry &e =
            btb_[pc % static_cast<std::uint64_t>(config_.btbEntries)];
        p.target = e.pc == pc ? e.target : pc + 1;
        return p;
      }
      default: {
        // Conditional branch: gshare direction, decoded target.
        std::uint8_t ctr = counters_[gshareIndex(ctx, pc)];
        p.taken = ctr >= 2;
        p.target = p.taken ? static_cast<std::uint64_t>(inst.imm)
                           : pc + 1;
        return p;
      }
    }
}

void
Bpred::update(CtxId ctx, std::uint64_t pc, const isa::Inst &inst,
              bool taken, std::uint64_t target)
{
    auto &ras = ras_[static_cast<std::size_t>(ctx)];
    switch (inst.op) {
      case isa::Opcode::JAL:
        if (isCall(inst)) {
            if (ras.size() >= static_cast<std::size_t>(config_.rasEntries))
                ras.erase(ras.begin());
            ras.push_back(pc + 1);
        }
        return;
      case isa::Opcode::JALR: {
        ++stats_.counter("indirects");
        if (isReturn(inst)) {
            if (!ras.empty()) {
                if (ras.back() == target)
                    ++stats_.counter("rasHits");
                else
                    ++stats_.counter("indirectMispredicts");
                ras.pop_back();
            } else {
                ++stats_.counter("indirectMispredicts");
            }
        } else {
            BtbEntry &e =
                btb_[pc % static_cast<std::uint64_t>(config_.btbEntries)];
            if (e.pc != pc || e.target != target)
                ++stats_.counter("indirectMispredicts");
            e.pc = pc;
            e.target = target;
        }
        if (isCall(inst)) {
            if (ras.size() >= static_cast<std::size_t>(config_.rasEntries))
                ras.erase(ras.begin());
            ras.push_back(pc + 1);
        }
        return;
      }
      default: {
        ++stats_.counter("condBranches");
        std::uint64_t idx = gshareIndex(ctx, pc);
        std::uint8_t &ctr = counters_[idx];
        bool predicted = ctr >= 2;
        if (predicted != taken)
            ++stats_.counter("condMispredicts");
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        auto &hist = history_[static_cast<std::size_t>(ctx)];
        hist = ((hist << 1) | (taken ? 1 : 0)) & historyMask_;
        return;
      }
    }
}

void
Bpred::resetContext(CtxId ctx)
{
    history_[static_cast<std::size_t>(ctx)] = 0;
    ras_[static_cast<std::size_t>(ctx)].clear();
}

} // namespace dttsim::cpu
