#pragma once

/**
 * @file
 * The pluggable accelerator interface of the timing core. A core owns
 * at most one Accelerator; the paper's DTT control unit is the first
 * implementation (accel::DttAccel), with speculative-precomputation
 * (sp::PrecomputeUnit) and computation-reuse (reuse::ReuseUnit)
 * siblings behind the same API (docs/ACCELERATORS.md).
 *
 * The split of responsibilities:
 *
 *  - the *core* keeps everything that touches pipeline state: fetch,
 *    context setup on spawn (startThread), squash/rollback mechanics,
 *    and the commit loop;
 *  - the *accelerator* keeps the policy: what a triggering store
 *    means, when a helper thread spawns, what TWAIT/TCHK read, and
 *    which fault sites apply to it.
 *
 * Every hook has a default that reproduces the accelerator-less
 * (baseline) machine, so a null Accelerator* and AccelKind::None are
 * the same machine by construction.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "common/reuse_buffer.h"
#include "common/stats.h"
#include "common/types.h"

namespace dttsim::sim {
class FaultPlan;
} // namespace dttsim::sim

namespace dttsim::cpu {

class CommitObserver;

/** Which accelerator a machine carries. Part of SimConfig and of the
 *  engine job digest (a DTT result must never be cache-shared with an
 *  SP or reuse result). */
enum class AccelKind : std::uint8_t {
    None,   ///< baseline: DTT opcodes are no-ops, no helper threads
    Dtt,    ///< data-triggered threads (Tseng & Tullsen, HPCA'11)
    Sp,     ///< speculative-precomputation helper threads (token based)
    Reuse,  ///< computation-reuse unit (ReuseSense-style)
};

/** Stable lowercase name: "none", "dtt", "sp", "reuse". */
const char *accelKindName(AccelKind k);

/** Inverse of accelKindName(); nullopt for an unknown name. */
std::optional<AccelKind> accelKindFromName(const std::string &name);

/**
 * What an accelerator may ask of the core it is attached to.
 * Implemented by cpu::OooCore. The port deliberately exposes spawn
 * mechanics only: an accelerator can place a helper thread on a free
 * context, but squash/rollback stays core-side (the core owns the
 * store-undo journal).
 */
class AccelPort
{
  public:
    virtual ~AccelPort() = default;

    /** Current core cycle. */
    virtual Cycle now() const = 0;

    /** Hardware contexts (context 0 is the main thread). */
    virtual int numContexts() const = 0;

    /** Context @p ctx (1..numContexts-1) is idle and not reserved by
     *  a co-runner, i.e. available for a helper thread. */
    virtual bool contextFree(CtxId ctx) const = 0;

    /**
     * Place a helper thread on free context @p ctx: architectural
     * reset to @p entry_pc with (a0, a1) = (@p addr, @p value), fetch
     * eligible after @p spawn_latency cycles. The core records
     * (@p trig, @p addr, @p value) as spawn provenance so a fault
     * squash can report the work item back via
     * Accelerator::threadSquashed().
     */
    virtual void startThread(CtxId ctx, TriggerId trig,
                             std::uint64_t entry_pc, Addr addr,
                             std::uint64_t value,
                             Cycle spawn_latency) = 0;

    /** Static instruction count of the loaded program (reuse-buffer
     *  sizing). */
    virtual std::size_t programSize() const = 0;
};

/**
 * One accelerator attached to the core. Lifecycle: construct from its
 * config block, attach() (the core constructor does this), run;
 * reset() returns it to the just-constructed state so one instance
 * can serve several runs in tests.
 *
 * Event defaults are the baseline machine: triggering stores never
 * stall or fire, TWAIT never blocks, TCHK reads 0, no thread ever
 * spawns, no fetch probe is served.
 */
class Accelerator
{
  public:
    Accelerator(AccelKind kind, const char *stat_group)
        : kind_(kind), stats_(stat_group)
    {
    }
    virtual ~Accelerator() = default;

    AccelKind kind() const { return kind_; }

    // ----- lifecycle --------------------------------------------------
    /**
     * Bind to the core. Called by the core constructor. Re-attaching
     * the same port is a no-op (idempotent); attaching a second port
     * is a fatal error — construct one accelerator per core.
     */
    virtual void attach(AccelPort &port);

    /** Return to the just-constructed state (registries, queues and
     *  stats cleared; port binding and fault plan kept). */
    virtual void reset();

    // ----- commit-time events from the core ---------------------------
    /** TREG committed: register handler @p entry_pc for @p t. */
    virtual void tregCommit(TriggerId t, std::uint64_t entry_pc)
    {
        (void)t; (void)entry_pc;
    }

    /** TUNREG committed. */
    virtual void tunregCommit(TriggerId t) { (void)t; }

    /** TCLR committed: clear @p t's sticky overflow flag. */
    virtual void tclrCommit(TriggerId t) { (void)t; }

    /**
     * A triggering store committed. @p silent means the store did not
     * change memory. @return true to stall the commit (the core
     * retries the same store next cycle); on any non-stall outcome
     * the accelerator must also retire the in-flight tstore it saw at
     * tstoreFetched().
     */
    virtual bool tstoreCommit(TriggerId t, Addr addr,
                              std::uint64_t value, bool silent)
    {
        (void)t; (void)addr; (void)value; (void)silent;
        return false;
    }

    /** An in-flight tstore left the pipeline without committing (the
     *  core squashed its context). */
    virtual void tstoreDone(TriggerId t) { (void)t; }

    /** TRET committed on @p ctx: the helper thread finished. */
    virtual void tretCommit(CtxId ctx) { (void)ctx; }

    // Plain load/instruction commit events are delivered through the
    // core's CommitObserver fan-out (commitObserver() below), not as
    // virtuals here: an accelerator that does not observe the commit
    // stream must not pay a call per retired instruction.

    // ----- fetch-time events ------------------------------------------
    /** A tstore for @p t entered the pipeline. */
    virtual void tstoreFetched(TriggerId t) { (void)t; }

    /** TWAIT condition for @p t (true: do not block fetch). */
    virtual bool waitSatisfied(TriggerId t) const
    {
        (void)t;
        return true;
    }

    /** TCHK value for @p t (bit 62: sticky overflow flag). */
    virtual std::int64_t chk(TriggerId t) const
    {
        (void)t;
        return 0;
    }

    /**
     * Accelerator wants a ReuseProbe for every reuse-eligible fetched
     * instruction. Queried once at attach time and cached by the core
     * — the answer must not change over a run.
     */
    virtual bool wantsFetchProbe() const { return false; }

    /** Serve a fetch probe; true means the instruction's execution is
     *  bypassed (reuse hit: 1-cycle ALU-slot issue, no D-cache
     *  access). Only called when wantsFetchProbe(). */
    virtual bool fetchProbe(std::uint64_t pc, const ReuseProbe &probe)
    {
        (void)pc; (void)probe;
        return false;
    }

    // ----- cycle hook --------------------------------------------------
    /** Called once per core cycle in the spawn stage: occupy free SMT
     *  contexts via AccelPort::startThread(). */
    virtual void tick() {}

    // ----- fault interaction -------------------------------------------
    /**
     * A fault squashed the helper thread on @p ctx before TRET. The
     * core already rolled the thread's stores back; (@p addr,
     * @p value) is the spawn's work item, so a lossless accelerator
     * requeues it here.
     */
    virtual void threadSquashed(CtxId ctx, Addr addr,
                                std::uint64_t value)
    {
        (void)ctx; (void)addr; (void)value;
    }

    /** Attach the simulation's fault plan (null: no injection). */
    virtual void setFaultPlan(sim::FaultPlan *plan) { plan_ = plan; }

    // ----- reporting ----------------------------------------------------
    /** Commit-stream observer to register with the core's fan-out
     *  list, or null. Queried once at simulator construction. */
    virtual CommitObserver *commitObserver() { return nullptr; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  protected:
    /** The bound core; fatal if called before attach(). */
    AccelPort &port() const;

    sim::FaultPlan *plan() const { return plan_; }

  private:
    AccelKind kind_;
    AccelPort *port_ = nullptr;
    sim::FaultPlan *plan_ = nullptr;
    StatGroup stats_;
};

} // namespace dttsim::cpu
