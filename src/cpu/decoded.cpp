#include "cpu/decoded.h"

#include "isa/opcodes.h"
#include "isa/operands.h"

namespace dttsim::cpu {

int
poolOfFu(isa::FuClass fu)
{
    switch (fu) {
      case isa::FuClass::IntAlu:
      case isa::FuClass::Branch:
      case isa::FuClass::Dtt:
        return 0;
      case isa::FuClass::IntMul:
      case isa::FuClass::IntDiv:
        return 1;
      case isa::FuClass::FpAdd:
        return 2;
      case isa::FuClass::FpMul:
      case isa::FuClass::FpDiv:
        return 3;
      case isa::FuClass::Mem:
        return 4;
    }
    return 0;
}

namespace {

/** Instructions the hardware reuse buffer may bypass: loads and
 *  multi-cycle arithmetic. Stores must still write, control must
 *  still steer, DTT ops must still reach the controller. */
bool
reuseEligible(const isa::Inst &inst)
{
    if (isa::isStore(inst.op) || isa::isControl(inst.op))
        return false;
    const isa::OpInfo &info = isa::opInfo(inst.op);
    if (info.fu == isa::FuClass::Dtt)
        return false;
    return isa::isLoad(inst.op) || info.latency > 1;
}

} // namespace

std::vector<DecodedInst>
decodeProgram(const isa::Program &prog)
{
    std::vector<DecodedInst> decoded(prog.size());
    for (std::uint64_t pc = 0; pc < prog.size(); ++pc) {
        const isa::Inst &inst = prog.at(pc);
        const isa::OpInfo &info = isa::opInfo(inst.op);
        DecodedInst &d = decoded[pc];
        d.latency = info.latency;
        d.pool = static_cast<std::uint8_t>(poolOfFu(info.fu));
        isa::forEachSource(inst, [&](bool is_fp, int idx) {
            if (d.numSrc < 2) {
                d.src[d.numSrc].fp = is_fp;
                d.src[d.numSrc].idx = static_cast<std::uint8_t>(idx);
                ++d.numSrc;
            }
        });
        bool is_fp;
        int idx;
        if (isa::destReg(inst, is_fp, idx)) {
            d.hasDest = true;
            d.destFp = is_fp;
            d.destIdx = static_cast<std::uint8_t>(idx);
        }
        d.reuseEligible = reuseEligible(inst);
        d.isTwait = inst.op == isa::Opcode::TWAIT;
        d.stopsFetch = inst.op == isa::Opcode::TRET
            || inst.op == isa::Opcode::HALT;
    }
    return decoded;
}

} // namespace dttsim::cpu
