#pragma once

/**
 * @file
 * Cycle-level SMT out-of-order core. Context 0 runs the main thread;
 * contexts 1..N-1 are occupied on demand by the attached accelerator
 * (cpu/accelerator.h) with pending helper threads — data-triggered
 * threads on the DTT machine. The model:
 *
 *  - ICOUNT fetch policy over active contexts, I-cache timing, gshare
 *    branch prediction (mispredicted branches stall the context's
 *    fetch until resolve + penalty; wrong-path instructions are not
 *    fetched — see DESIGN.md for this documented approximation);
 *  - functional execution happens at fetch in per-context program
 *    order (values are architecturally exact); timing is modeled
 *    separately through dispatch/issue/commit resource accounting;
 *  - shared ROB/IQ/LQ/SQ occupancy, pooled functional units, loads
 *    probe the data cache at issue, stores write it at commit;
 *  - accelerator semantics: triggering stores evaluate their trigger
 *    at commit (the accelerator may stall the commit), TWAIT gates
 *    fetch of the waiting context on the accelerator's wait
 *    condition, TRET frees the context at commit.
 */

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include <memory>

#include "common/reuse_buffer.h"
#include "common/stats.h"
#include "common/types.h"
#include "cpu/accelerator.h"
#include "cpu/arch_state.h"
#include "cpu/bpred.h"
#include "cpu/core_config.h"
#include "cpu/decoded.h"
#include "cpu/executor.h"
#include "cpu/inst_ring.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/memory.h"

namespace dttsim::sim {
class FaultPlan;
} // namespace dttsim::sim

namespace dttsim::cpu {

/** Simulated byte address of instruction slot @p pc (for caches). */
inline Addr
pcToAddr(std::uint64_t pc)
{
    return 0x1000 + pc * 4;
}

/** One in-flight dynamic instruction. */
struct DynInst
{
    SeqNum seq = 0;
    CtxId ctx = 0;
    StepInfo info;                 ///< functional result (fetch time)
    Cycle fetchCycle = 0;
    int depCount = 0;              ///< outstanding producers
    bool dispatched = false;
    bool issued = false;
    bool completed = false;
    bool blocksFetchOnComplete = false;  ///< mispredicted branch
    bool reused = false;           ///< hit in the HW reuse buffer
    Cycle completeCycle = 0;
    std::vector<DynInst *> consumers;
};

/** End-of-run summary for one core execution. */
struct CoreRunResult
{
    Cycle cycles = 0;
    std::uint64_t mainCommitted = 0;
    std::uint64_t dttCommitted = 0;
    std::uint64_t dttSpawns = 0;
    bool halted = false;   ///< main thread reached HALT
    bool hitMaxCycles = false;
    HaltReason reason = HaltReason::CycleLimit;
    /** Per-context state dump when reason == Deadlock. */
    std::string detail;
};

/** The SMT out-of-order timing core. */
class OooCore : public AccelPort
{
  public:
    /**
     * @param config core parameters.
     * @param prog program image (shared text for all contexts).
     * @param hierarchy cache timing model.
     * @param accel the attached accelerator (may be null to run the
     *        program as a plain single/multi-context core; DTT
     *        opcodes then behave as no-ops and never trigger). The
     *        constructor calls accel->attach(*this).
     */
    OooCore(const CoreConfig &config, const isa::Program &prog,
            mem::Hierarchy &hierarchy, Accelerator *accel);

    /** Run until the main thread halts or @p max_cycles elapse. */
    CoreRunResult run(Cycle max_cycles = 1ull << 40);

    /**
     * Start an independent co-running thread on context @p ctx
     * (1..numContexts-1) at @p entry_pc, before run(). Co-runner
     * contexts are never used for DTT spawns; they model other work
     * sharing the SMT core. A co-runner may HALT (its context goes
     * idle) but the simulation ends only when context 0 halts.
     */
    void startCoRunner(CtxId ctx, std::uint64_t entry_pc);

    /** Advance one cycle (exposed for tests). */
    void tick();

    bool halted() const { return halted_; }
    mem::Memory &memory() { return memory_; }

    // ----- AccelPort (the accelerator's view of this core) ----------
    Cycle now() const override { return now_; }
    int numContexts() const override { return config_.numContexts; }
    bool contextFree(CtxId ctx) const override;
    void startThread(CtxId ctx, TriggerId trig, std::uint64_t entry_pc,
                     Addr addr, std::uint64_t value,
                     Cycle spawn_latency) override;
    std::size_t programSize() const override { return prog_.size(); }

    /**
     * Enable a per-event pipeline trace (fetch/dispatch/issue/
     * complete/commit, DTT spawns and trigger outcomes) on @p out.
     * Pass nullptr to disable. Intended for debugging; the format is
     * "cycle stage ctx pc disassembly [annotation]".
     */
    void setTraceFile(std::FILE *out) { trace_ = out; }
    const ArchState &archState(CtxId ctx) const;
    Bpred &bpred() { return bpred_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Committed instructions per context kind. */
    std::uint64_t mainCommitted() const { return mainCommitted_; }
    std::uint64_t dttCommitted() const { return dttCommitted_; }

    /** Attach the simulation's fault plan (null: no injection). */
    void setFaultPlan(sim::FaultPlan *plan) { plan_ = plan; }

    /**
     * Append a commit-time observer to the fan-out list (null is
     * ignored). Each observer is called for every retired instruction
     * in per-context program order, in registration order; with the
     * list empty the commit loop costs one predictable branch per
     * commit, so the default path stays byte-identical in timing and
     * results.
     */
    void addCommitObserver(CommitObserver *obs)
    {
        if (obs != nullptr)
            commitObservers_.push_back(obs);
    }

  private:
    /** One pre-store memory value, for rolling back a squashed
     *  thread's writes (execute-at-fetch makes stores visible early;
     *  a real squash discards the uncommitted store buffer). */
    struct StoreUndo
    {
        Addr addr = 0;
        int size = 0;
        std::uint64_t oldValue = 0;
    };

    struct CtxState
    {
        bool active = false;
        bool isCoRunner = false;     ///< excluded from DTT spawns
        bool fetchStopped = false;   ///< fetched TRET/HALT
        bool fetchBlockedOnBranch = false;
        bool twaitBlocked = false;
        TriggerId twaitTrig = invalidTrigger;
        Cycle fetchReady = 0;
        std::uint64_t curFetchLine = ~0ull;
        ArchState arch;
        InstRing<DynInst *> frontend;  ///< fetched, not dispatched
        InstRing<DynInst *> rob;       ///< dispatched, not committed
        DynInst *lastWriter[2][32] = {};  ///< [int=0/fp=1][reg]
        std::uint64_t fetched = 0;
        std::uint64_t committed = 0;
        // Per-context occupancy of the shared queues (reservation).
        int robUsed = 0;
        int iqUsed = 0;
        int lqUsed = 0;
        int sqUsed = 0;
        // Spawn provenance + pending fault squash (fault injection).
        TriggerId spawnTrig = invalidTrigger;
        Addr spawnAddr = 0;
        std::uint64_t spawnValue = 0;
        bool squashArmed = false;
        Cycle squashAt = 0;
        /** Stores executed while squashArmed, in program order;
         *  replayed backwards on squash so partial handler runs
         *  leave no trace (handlers need not be idempotent under
         *  partial execution — e.g. delta-maintained accumulators). */
        std::vector<StoreUndo> undoLog;
    };

    void traceEvent(const char *stage, const DynInst &di,
                    const char *annotation = "");
    void doComplete();
    void doCommit();
    void doIssue();
    void doDispatch();
    void doFetch();
    /** Execute fault squashes whose delay elapsed this cycle. */
    void applyFaultSquashes();
    /** Kill the helper thread on @p ctx mid-flight: roll back its
     *  journaled stores (the discarded store buffer), purge its
     *  instructions, and report the work item to the accelerator so
     *  a lossless one requeues it and the handler re-runs from the
     *  pre-spawn memory state. */
    void squashContext(CtxId ctx);
    void fetchFrom(CtxId ctx, int &budget);
    int icount(const CtxState &c) const;
    /** Per-context allocation ceiling for a shared queue. */
    int ctxCap(int total_size) const;
    void linkDependencies(CtxState &c, DynInst &di);
    void scheduleCompletion(DynInst &di, Cycle when);
    bool takeFuSlot(int pool);
    void releaseCommittedWriter(CtxState &c, const DynInst &di);
    /** Take a recycled (or fresh) DynInst from the arena. */
    DynInst *allocInst();
    /** Return a retired/squashed DynInst to the arena. */
    void freeInst(DynInst *di) { freeInsts_.push_back(di); }

    /** Fetch-time hook adapter: only TCHK reads the accelerator; all
     *  state-changing DTT events are deferred to commit. */
    class FetchHooks : public DttHooks
    {
      public:
        explicit FetchHooks(Accelerator *accel) : accel_(accel) {}
        std::int64_t
        chk(TriggerId t) override
        {
            return accel_ ? accel_->chk(t) : 0;
        }
      private:
        Accelerator *accel_;
    };

    CoreConfig config_;
    const isa::Program &prog_;
    mem::Hierarchy &hierarchy_;
    Accelerator *accel_;
    mem::Memory memory_;
    Bpred bpred_;
    FetchHooks fetchHooks_;
    std::unique_ptr<ReuseBufferSet> reuse_;  ///< null unless enabled
    /** accel_ wants a fetch probe per reuse-eligible instruction
     *  (cached at construction; the legacy in-core reuse_ buffer
     *  takes precedence when both are configured). */
    bool accelProbe_ = false;

    std::vector<CtxState> ctxs_;
    std::vector<DynInst *> iq_;     ///< dispatch order
    static constexpr std::size_t kWheelSize = 4096;
    std::vector<std::vector<DynInst *>> wheel_;
    int robUsed_ = 0;
    int iqUsed_ = 0;
    int lqUsed_ = 0;
    int sqUsed_ = 0;
    int fuUsed_[5] = {};            ///< per FU pool, this cycle
    int fuLimit_[5] = {};           ///< per FU pool, from config

    /** Static decode cache, indexed by pc (see cpu/decoded.h). */
    std::vector<DecodedInst> decoded_;
    /** In-flight instruction arena: storage is a deque so pointers
     *  stay stable; retired instructions return to freeInsts_ with
     *  their consumers capacity intact, so the per-cycle loop makes
     *  no heap allocations in steady state. */
    std::deque<DynInst> instPool_;
    std::vector<DynInst *> freeInsts_;
    /** Per-cycle fetch candidate scratch (reused, never freed). */
    std::vector<int> fetchCandidates_;
    std::uint32_t fetchLineShift_ = 6;  ///< log2(l1i lineBytes)

    Cycle now_ = 0;
    SeqNum nextSeq_ = 0;
    bool halted_ = false;
    Cycle lastCommit_ = 0;
    std::FILE *trace_ = nullptr;
    int rrCommit_ = 0;
    int rrDispatch_ = 0;
    std::uint64_t mainCommitted_ = 0;
    std::uint64_t dttCommitted_ = 0;
    std::uint64_t dttSpawns_ = 0;
    StatGroup stats_;
    // Hot-path counters resolved once at construction; StatGroup's
    // string-keyed lookup is too slow for per-event increments, and
    // its map nodes are stable so the pointers stay valid.
    Counter *cntCycles_ = nullptr;
    Counter *cntFetched_ = nullptr;
    Counter *cntCommitted_ = nullptr;
    Counter *cntMainCommitted_ = nullptr;
    Counter *cntDttCommitted_ = nullptr;
    Counter *cntCoRunnerCommitted_ = nullptr;
    Counter *cntTwaitStalls_ = nullptr;
    Counter *cntTstoreStalls_ = nullptr;
    Counter *cntRobFull_ = nullptr;
    Counter *cntIqFull_ = nullptr;
    Counter *cntLsqFull_ = nullptr;
    Counter *cntIcacheBlock_ = nullptr;
    Counter *cntSpawns_ = nullptr;
    Counter *cntReused_ = nullptr;
    sim::FaultPlan *plan_ = nullptr;
    std::vector<CommitObserver *> commitObservers_;
    bool deadlocked_ = false;
    std::string deadlockDetail_;
};

} // namespace dttsim::cpu
