#pragma once

/**
 * @file
 * Timing-core configuration: an SMT out-of-order superscalar in the
 * style the paper simulates (ICOUNT fetch over hardware contexts,
 * shared ROB/IQ/LSQ partitions, pooled functional units). Defaults
 * approximate the era's 4-context SMT research configurations.
 */

#include "common/types.h"
#include "cpu/bpred.h"

namespace dttsim::cpu {

/** All timing parameters of the core. */
struct CoreConfig
{
    /** Hardware contexts: context 0 runs the main thread; the rest
     *  are available to spawned data-triggered threads. */
    int numContexts = 4;

    int fetchWidth = 8;     ///< instructions fetched per cycle (total)
    int fetchThreads = 2;   ///< contexts fetched per cycle (ICOUNT2.8)
    int fetchBlockInsts = 8; ///< fetch stops at this block boundary
    int frontendDepth = 5;  ///< fetch-to-dispatch latency (cycles)
    int frontendQSize = 24; ///< per-context fetched-instruction buffer
    int dispatchWidth = 8;
    int issueWidth = 6;
    int commitWidth = 8;

    int robSize = 256;      ///< shared reorder buffer entries
    int iqSize = 64;        ///< shared issue queue entries
    int lqSize = 48;        ///< shared load queue entries
    int sqSize = 32;        ///< shared store queue entries

    /**
     * Queue entries reserved per *other* context: context c may not
     * allocate beyond size - reserve*(numContexts-1) entries of any
     * shared queue. Guarantees forward progress for data-triggered
     * threads even when the main thread is commit-stalled on a full
     * thread queue (otherwise the stalled store's context can wedge
     * the store queue the handler needs — a deadlock cycle).
     */
    int queueReservePerCtx = 2;

    // Functional-unit pool (issue slots per class per cycle; fully
    // pipelined).
    int intAlu = 4;
    int intMulDiv = 2;
    int fpAlu = 2;
    int fpMulDiv = 2;
    int memPorts = 2;

    /** Extra redirect cycles after a mispredicted branch resolves
     *  (refill is additionally paid through frontendDepth). */
    int mispredictPenalty = 3;

    /**
     * Forward-progress watchdog: when no context commits for this
     * many consecutive cycles the run stops with HaltReason::Deadlock
     * (and a per-context state dump) instead of burning the rest of
     * the maxCycles budget. 0 disables the watchdog. The default sits
     * orders of magnitude above any legitimate no-commit window
     * (DRAM-latency chains, spawn initialization, I-cache refills are
     * all worth hundreds of cycles at most).
     */
    Cycle watchdogWindow = 100000;

    /**
     * Hardware instruction reuse (Sodani/Sohi-style) — the
     * value-locality comparison machine: long-latency instructions
     * and loads that match a remembered execution bypass their
     * execution latency (and the D-cache access). They still consume
     * fetch, rename, issue and commit bandwidth, which is why reuse
     * alone recovers far less than eliminating the computation with
     * DTTs.
     */
    bool reuseBuffer = false;
    int reuseEntriesPerPc = 8;

    BpredConfig bpred;
};

} // namespace dttsim::cpu
