#pragma once

/**
 * @file
 * Architectural state of one hardware context: PC, 32 integer
 * registers (x0 hard-wired to zero) and 32 double-precision FP
 * registers.
 */

#include <array>
#include <cstdint>

#include "common/types.h"

namespace dttsim::cpu {

/** Per-context architectural register state. */
struct ArchState
{
    std::uint64_t pc = 0;
    std::array<std::uint64_t, 32> x{};
    std::array<double, 32> f{};

    std::uint64_t
    getX(int i) const
    {
        return i == 0 ? 0 : x[static_cast<std::size_t>(i)];
    }

    void
    setX(int i, std::uint64_t v)
    {
        if (i != 0)
            x[static_cast<std::size_t>(i)] = v;
    }

    double getF(int i) const { return f[static_cast<std::size_t>(i)]; }
    void setF(int i, double v) { f[static_cast<std::size_t>(i)] = v; }

    /** Reset to a clean state with the given entry PC and stack. */
    void
    reset(std::uint64_t entry_pc, std::uint64_t stack_ptr)
    {
        pc = entry_pc;
        x.fill(0);
        f.fill(0.0);
        x[2] = stack_ptr;  // sp
    }
};

} // namespace dttsim::cpu
