#include "cpu/ooo_core.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/log.h"
#include "isa/disasm.h"
#include "isa/operands.h"
#include "sim/faultplan.h"

namespace dttsim::cpu {

namespace {

std::uint64_t
fpBits(double d)
{
    std::uint64_t v;
    std::memcpy(&v, &d, 8);
    return v;
}

} // namespace

OooCore::OooCore(const CoreConfig &config, const isa::Program &prog,
                 mem::Hierarchy &hierarchy, Accelerator *accel)
    : config_(config),
      prog_(prog),
      hierarchy_(hierarchy),
      accel_(accel),
      bpred_([&] {
          BpredConfig b = config.bpred;
          b.numContexts = config.numContexts;
          return b;
      }()),
      fetchHooks_(accel),
      ctxs_(static_cast<std::size_t>(config.numContexts)),
      wheel_(kWheelSize),
      stats_("core")
{
    if (config_.numContexts < 1)
        fatal("core needs at least one hardware context");
    if (config_.reuseBuffer)
        reuse_ = std::make_unique<ReuseBufferSet>(
            prog_.size(), config_.reuseEntriesPerPc);
    if (accel_ != nullptr) {
        accel_->attach(*this);
        // Legacy in-core reuse buffer wins when both are configured.
        accelProbe_ = reuse_ == nullptr && accel_->wantsFetchProbe();
    }
    loadData(prog_, memory_);
    CtxState &main = ctxs_[0];
    main.active = true;
    main.arch.reset(prog_.entry(), stackFor(0));

    cntCycles_ = &stats_.counter("cycles");
    cntFetched_ = &stats_.counter("fetched");
    cntCommitted_ = &stats_.counter("committed");
    cntMainCommitted_ = &stats_.counter("mainCommitted");
    cntDttCommitted_ = &stats_.counter("dttCommitted");
    cntTwaitStalls_ = &stats_.counter("twaitStallCycles");
    cntTstoreStalls_ = &stats_.counter("tstoreCommitStalls");
    cntRobFull_ = &stats_.counter("robFullStalls");
    cntIqFull_ = &stats_.counter("iqFullStalls");
    cntLsqFull_ = &stats_.counter("lsqFullStalls");
    cntIcacheBlock_ = &stats_.counter("icacheBlockCycles");
    cntSpawns_ = &stats_.counter("spawns");
    cntReused_ = &stats_.counter("reusedInsts");
    cntCoRunnerCommitted_ = &stats_.counter("coRunnerCommitted");
    stats_.counter("faultSquashedThreads");

    decoded_ = decodeProgram(prog_);
    fetchLineShift_ = static_cast<std::uint32_t>(std::countr_zero(
        std::uint64_t(hierarchy_.config().l1i.lineBytes)));
    fuLimit_[0] = config_.intAlu;
    fuLimit_[1] = config_.intMulDiv;
    fuLimit_[2] = config_.fpAlu;
    fuLimit_[3] = config_.fpMulDiv;
    fuLimit_[4] = config_.memPorts;
    for (CtxState &c : ctxs_) {
        c.frontend.reserve(
            static_cast<std::size_t>(config_.frontendQSize));
        c.rob.reserve(static_cast<std::size_t>(config_.robSize));
    }
}

DynInst *
OooCore::allocInst()
{
    DynInst *di;
    if (!freeInsts_.empty()) {
        di = freeInsts_.back();
        freeInsts_.pop_back();
    } else {
        instPool_.emplace_back();
        di = &instPool_.back();
    }
    di->seq = 0;
    di->ctx = 0;
    di->fetchCycle = 0;
    di->depCount = 0;
    di->dispatched = false;
    di->issued = false;
    di->completed = false;
    di->blocksFetchOnComplete = false;
    di->reused = false;
    di->completeCycle = 0;
    di->consumers.clear();  // keeps capacity for the next tenant
    return di;
}

const ArchState &
OooCore::archState(CtxId ctx) const
{
    return ctxs_.at(static_cast<std::size_t>(ctx)).arch;
}

void
OooCore::startCoRunner(CtxId ctx, std::uint64_t entry_pc)
{
    if (ctx <= 0 || ctx >= config_.numContexts)
        fatal("co-runner context %d out of range", ctx);
    if (now_ != 0)
        panic("co-runners must start before the first cycle");
    CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
    if (c.active)
        fatal("context %d already occupied", ctx);
    c.active = true;
    c.isCoRunner = true;
    c.arch.reset(entry_pc, stackFor(ctx));
}

void
OooCore::scheduleCompletion(DynInst &di, Cycle when)
{
    if (when <= now_)
        panic("completion scheduled in the past");
    if (when - now_ >= kWheelSize)
        panic("latency %llu exceeds completion wheel",
              static_cast<unsigned long long>(when - now_));
    di.completeCycle = when;
    wheel_[when % kWheelSize].push_back(&di);
}

bool
OooCore::takeFuSlot(int pool)
{
    if (fuUsed_[pool] >= fuLimit_[pool])
        return false;
    ++fuUsed_[pool];
    return true;
}

int
OooCore::icount(const CtxState &c) const
{
    return static_cast<int>(c.frontend.size() + c.rob.size());
}

int
OooCore::ctxCap(int total_size) const
{
    int cap = total_size
        - config_.queueReservePerCtx * (config_.numContexts - 1);
    return cap < 1 ? 1 : cap;
}

void
OooCore::traceEvent(const char *stage, const DynInst &di,
                    const char *annotation)
{
    if (trace_ == nullptr)
        return;
    std::fprintf(trace_, "%8llu %-3s c%d %6llu  %-28s %s\n",
                 static_cast<unsigned long long>(now_), stage, di.ctx,
                 static_cast<unsigned long long>(di.info.pc),
                 isa::disassemble(di.info.inst).c_str(), annotation);
}

void
OooCore::doComplete()
{
    auto &slot = wheel_[now_ % kWheelSize];
    for (DynInst *di : slot) {
        di->completed = true;
        traceEvent("CMP", *di);
        for (DynInst *consumer : di->consumers) {
            if (--consumer->depCount < 0)
                panic("dependence count underflow");
        }
        if (di->blocksFetchOnComplete) {
            CtxState &c = ctxs_[static_cast<std::size_t>(di->ctx)];
            c.fetchBlockedOnBranch = false;
            Cycle resume = now_
                + static_cast<Cycle>(config_.mispredictPenalty);
            if (resume > c.fetchReady)
                c.fetchReady = resume;
        }
    }
    slot.clear();
}

void
OooCore::releaseCommittedWriter(CtxState &c, const DynInst &di)
{
    const DecodedInst &d = decoded_[di.info.pc];
    if (d.hasDest
        && c.lastWriter[d.destFp ? 1 : 0][d.destIdx] == &di)
        c.lastWriter[d.destFp ? 1 : 0][d.destIdx] = nullptr;
}

void
OooCore::doCommit()
{
    int budget = config_.commitWidth;
    int n = config_.numContexts;
    for (int k = 0; k < n && budget > 0; ++k) {
        auto ci = static_cast<std::size_t>((rrCommit_ + k) % n);
        CtxState &c = ctxs_[ci];
        while (budget > 0 && !c.rob.empty()) {
            DynInst &di = *c.rob.front();
            if (!di.completed)
                break;
            const isa::Inst &inst = di.info.inst;

            if (di.info.isTstore && accel_) {
                if (accel_->tstoreCommit(inst.trig, di.info.mem.addr,
                                         di.info.mem.value,
                                         di.info.silent)) {
                    ++*cntTstoreStalls_;
                    traceEvent("TQS", di, "thread queue full");
                    break;  // retry next cycle
                }
            }
            if (di.info.mem.valid && !di.info.mem.isLoad)
                hierarchy_.accessData(di.info.mem.addr, true, now_);

            switch (inst.op) {
              case isa::Opcode::TREG:
                if (accel_)
                    accel_->tregCommit(
                        inst.trig,
                        static_cast<std::uint64_t>(inst.imm));
                break;
              case isa::Opcode::TUNREG:
                if (accel_)
                    accel_->tunregCommit(inst.trig);
                break;
              case isa::Opcode::TCLR:
                if (accel_)
                    accel_->tclrCommit(inst.trig);
                break;
              case isa::Opcode::TRET:
                if (ci == 0)
                    fatal("TRET committed by the main thread");
                if (accel_)
                    accel_->tretCommit(static_cast<CtxId>(ci));
                break;
              case isa::Opcode::HALT:
                if (ci == 0) {
                    halted_ = true;
                } else if (c.isCoRunner) {
                    // A co-runner finished; its context idles (it
                    // stays reserved, not handed to DTT spawns).
                    c.active = false;
                } else {
                    fatal("HALT committed by a DTT context");
                }
                break;
              default:
                break;
            }

            if (!commitObservers_.empty())
                for (CommitObserver *obs : commitObservers_)
                    obs->onCommit(di.info, static_cast<CtxId>(ci));

            releaseCommittedWriter(c, di);
            bool was_load = di.info.mem.valid && di.info.mem.isLoad;
            bool was_store = di.info.mem.valid && !di.info.mem.isLoad;
            bool was_tret = inst.op == isa::Opcode::TRET;
            traceEvent("RET", di);
            c.rob.pop_front();
            freeInst(&di);  // di (and inst) dangle past this point
            --robUsed_;
            --c.robUsed;
            if (was_load) {
                --lqUsed_;
                --c.lqUsed;
            }
            if (was_store) {
                --sqUsed_;
                --c.sqUsed;
            }
            --budget;
            ++c.committed;
            ++*cntCommitted_;
            if (ci == 0) {
                ++mainCommitted_;
                ++*cntMainCommitted_;
            } else if (c.isCoRunner) {
                ++*cntCoRunnerCommitted_;
            } else {
                ++dttCommitted_;
                ++*cntDttCommitted_;
            }
            lastCommit_ = now_;

            if (was_tret) {
                // Context is finished; reclaim it.
                if (!c.rob.empty() || !c.frontend.empty())
                    panic("instructions younger than TRET in ctx %zu",
                          ci);
                c.active = false;
                c.fetchStopped = false;
                std::fill(&c.lastWriter[0][0], &c.lastWriter[0][0] + 64,
                          nullptr);
                break;
            }
        }
    }
    rrCommit_ = (rrCommit_ + 1) % n;
}

void
OooCore::doIssue()
{
    int budget = config_.issueWidth;
    for (DynInst *di : iq_) {
        if (budget == 0)
            break;
        if (di->issued || di->depCount > 0)
            continue;
        const DecodedInst &dec = decoded_[di->info.pc];
        // Reuse hits read the reuse buffer instead of executing:
        // single-cycle on an ALU slot, no D-cache access.
        int pool = di->reused ? 0 : dec.pool;
        if (!takeFuSlot(pool))
            continue;
        Cycle lat;
        if (di->reused)
            lat = 1;
        else if (di->info.mem.valid && di->info.mem.isLoad)
            lat = hierarchy_.accessData(di->info.mem.addr, false,
                                        now_);
        else if (di->info.mem.valid)
            lat = 1;  // store: AGU only; cache written at commit
        else
            lat = dec.latency;
        if (lat < 1)
            lat = 1;
        di->issued = true;
        traceEvent("ISS", *di, di->reused ? "reuse hit" : "");
        scheduleCompletion(*di, now_ + lat);
        --budget;
        --iqUsed_;
        --ctxs_[static_cast<std::size_t>(di->ctx)].iqUsed;
    }
    std::erase_if(iq_, [](DynInst *d) { return d->issued; });
}

void
OooCore::doDispatch()
{
    int budget = config_.dispatchWidth;
    int n = config_.numContexts;
    for (int k = 0; k < n && budget > 0; ++k) {
        auto ci = static_cast<std::size_t>((rrDispatch_ + k) % n);
        CtxState &c = ctxs_[ci];
        while (budget > 0 && !c.frontend.empty()) {
            DynInst &head = *c.frontend.front();
            if (head.fetchCycle
                + static_cast<Cycle>(config_.frontendDepth) > now_)
                break;
            if (robUsed_ >= config_.robSize
                || c.robUsed >= ctxCap(config_.robSize)) {
                ++*cntRobFull_;
                break;
            }
            if (iqUsed_ >= config_.iqSize
                || c.iqUsed >= ctxCap(config_.iqSize)) {
                ++*cntIqFull_;
                break;
            }
            bool is_load = head.info.mem.valid && head.info.mem.isLoad;
            bool is_store = head.info.mem.valid && !head.info.mem.isLoad;
            if ((is_load && (lqUsed_ >= config_.lqSize
                             || c.lqUsed >= ctxCap(config_.lqSize)))
                || (is_store && (sqUsed_ >= config_.sqSize
                                 || c.sqUsed >= ctxCap(config_.sqSize)))) {
                ++*cntLsqFull_;
                break;
            }
            c.rob.push_back(&head);
            c.frontend.pop_front();
            DynInst &di = head;
            di.dispatched = true;
            ++robUsed_;
            ++iqUsed_;
            ++c.robUsed;
            ++c.iqUsed;
            if (is_load) {
                ++lqUsed_;
                ++c.lqUsed;
            }
            if (is_store) {
                ++sqUsed_;
                ++c.sqUsed;
            }
            linkDependencies(c, di);
            traceEvent("DIS", di);
            iq_.push_back(&di);
            --budget;
        }
    }
    rrDispatch_ = (rrDispatch_ + 1) % n;
}

void
OooCore::linkDependencies(CtxState &c, DynInst &di)
{
    const DecodedInst &d = decoded_[di.info.pc];
    for (int s = 0; s < d.numSrc; ++s) {
        bool is_fp = d.src[s].fp;
        int idx = d.src[s].idx;
        if (!is_fp && idx == 0)
            continue;  // x0
        DynInst *producer = c.lastWriter[is_fp ? 1 : 0][idx];
        if (producer != nullptr && !producer->completed) {
            ++di.depCount;
            producer->consumers.push_back(&di);
        }
    }
    if (d.hasDest)
        c.lastWriter[d.destFp ? 1 : 0][d.destIdx] = &di;
}

bool
OooCore::contextFree(CtxId ctx) const
{
    const CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
    return !c.active && !c.isCoRunner;
}

void
OooCore::startThread(CtxId ctx, TriggerId trig, std::uint64_t entry_pc,
                     Addr addr, std::uint64_t value, Cycle spawn_latency)
{
    CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
    if (c.active || c.isCoRunner)
        panic("startThread on occupied context %d", ctx);
    c.active = true;
    c.fetchStopped = false;
    c.fetchBlockedOnBranch = false;
    c.twaitBlocked = false;
    c.curFetchLine = ~0ull;
    c.arch.reset(entry_pc, stackFor(ctx));
    c.arch.setX(10, addr);   // a0
    c.arch.setX(11, value);  // a1
    c.fetchReady = now_ + spawn_latency;
    std::fill(&c.lastWriter[0][0], &c.lastWriter[0][0] + 64,
              nullptr);
    bpred_.resetContext(ctx);
    // Remember the work item so a fault squash can requeue it.
    c.spawnTrig = trig;
    c.spawnAddr = addr;
    c.spawnValue = value;
    c.squashArmed = false;
    c.undoLog.clear();
    if (plan_ != nullptr
        && plan_->inject(sim::FaultSite::SquashThread)) {
        c.squashArmed = true;
        c.squashAt = c.fetchReady + plan_->squashDelay();
    }
    if (trace_ != nullptr)
        std::fprintf(trace_,
                     "%8llu SPW c%d trigger %d entry %llu"
                     " addr 0x%llx\n",
                     static_cast<unsigned long long>(now_), ctx,
                     trig,
                     static_cast<unsigned long long>(entry_pc),
                     static_cast<unsigned long long>(addr));
    ++dttSpawns_;
    ++*cntSpawns_;
}

void
OooCore::doFetch()
{
    // Gather fetchable contexts, unblocking satisfied TWAITs.
    std::vector<int> &candidates = fetchCandidates_;
    candidates.clear();
    for (int ctx = 0; ctx < config_.numContexts; ++ctx) {
        CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
        if (!c.active || c.fetchStopped || c.fetchBlockedOnBranch)
            continue;
        if (c.twaitBlocked) {
            if (accel_ && accel_->waitSatisfied(c.twaitTrig))
                c.twaitBlocked = false;
            else
                continue;
        }
        if (c.fetchReady > now_)
            continue;
        if (c.frontend.size()
            >= static_cast<std::size_t>(config_.frontendQSize))
            continue;
        candidates.push_back(ctx);
    }
    // ICOUNT: fewest in-flight instructions first.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](int a, int b) {
                         return icount(ctxs_[size_t(a)])
                             < icount(ctxs_[size_t(b)]);
                     });

    int budget = config_.fetchWidth;
    int threads = 0;
    for (int ctx : candidates) {
        if (budget == 0 || threads >= config_.fetchThreads)
            break;
        fetchFrom(ctx, budget);
        ++threads;
    }
}

void
OooCore::fetchFrom(CtxId ctx, int &budget)
{
    CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
    std::uint64_t block = c.arch.pc
        / static_cast<std::uint64_t>(config_.fetchBlockInsts);

    while (budget > 0
           && c.frontend.size()
              < static_cast<std::size_t>(config_.frontendQSize)) {
        std::uint64_t pc = c.arch.pc;

        // I-cache: probe on each new line.
        std::uint64_t line = pcToAddr(pc) >> fetchLineShift_;
        if (line != c.curFetchLine) {
            Cycle lat = hierarchy_.accessInst(pcToAddr(pc), now_);
            c.curFetchLine = line;
            if (lat > hierarchy_.l1i().hitLatency()) {
                c.fetchReady = now_ + lat;
                ++*cntIcacheBlock_;
                return;
            }
        }

        const isa::Inst &inst = prog_.at(pc);
        const DecodedInst &dec = decoded_[pc];
        if (dec.isTwait && accel_
            && !accel_->waitSatisfied(inst.trig)) {
            c.twaitBlocked = true;
            c.twaitTrig = inst.trig;
            return;
        }

        // Hardware-reuse machine (in-core buffer or reuse-unit
        // accelerator): capture source values pre-execute.
        ReuseProbe probe;
        bool try_reuse =
            (reuse_ != nullptr || accelProbe_) && dec.reuseEligible;
        if (try_reuse) {
            for (int s = 0; s < dec.numSrc; ++s)
                probe.src[probe.numSrc++] = dec.src[s].fp
                    ? fpBits(c.arch.getF(dec.src[s].idx))
                    : c.arch.getX(dec.src[s].idx);
        }

        StepInfo info = step(c.arch, memory_, prog_, &fetchHooks_);

        DynInst *dip = allocInst();
        DynInst &di = *dip;
        di.seq = nextSeq_++;
        di.ctx = ctx;
        di.info = info;
        di.fetchCycle = now_;

        if (try_reuse) {
            probe.hasMem = info.mem.valid;
            probe.addr = info.mem.addr;
            probe.memValue = info.mem.value;
            di.reused = reuse_ != nullptr
                ? reuse_->lookupInsert(pc, probe)
                : accel_->fetchProbe(pc, probe);
            if (di.reused)
                ++*cntReused_;
        }

        // A squash-armed thread journals its stores' pre-images so
        // the squash can discard them like an uncommitted store
        // buffer (execution is functional at fetch, so the writes
        // are already in memory by now).
        if (c.squashArmed && info.mem.valid && !info.mem.isLoad)
            c.undoLog.push_back(StoreUndo{
                info.mem.addr, info.mem.size, info.mem.oldValue});

        if (info.isTstore && accel_)
            accel_->tstoreFetched(inst.trig);

        bool mispredicted = false;
        if (info.isControl) {
            Prediction pred = bpred_.predict(ctx, pc, inst);
            mispredicted = pred.taken != info.taken
                || (info.taken && pred.target != info.nextPc);
            bpred_.update(ctx, pc, inst, info.taken, info.nextPc);
            if (mispredicted) {
                di.blocksFetchOnComplete = true;
                c.fetchBlockedOnBranch = true;
            }
        }

        traceEvent("FET", di, mispredicted ? "mispredict" : "");
        c.frontend.push_back(dip);
        --budget;
        ++c.fetched;
        ++*cntFetched_;

        if (dec.stopsFetch) {
            c.fetchStopped = true;
            return;
        }
        if (mispredicted)
            return;
        if (info.taken)
            return;  // taken-branch fetch break
        if (info.nextPc / static_cast<std::uint64_t>(
                config_.fetchBlockInsts) != block)
            return;  // fetch-block boundary
    }
}

void
OooCore::applyFaultSquashes()
{
    for (int ctx = 1; ctx < config_.numContexts; ++ctx) {
        CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
        if (!c.squashArmed || now_ < c.squashAt)
            continue;
        c.squashArmed = false;
        if (!c.active || c.isCoRunner) {
            // Thread retired before the squash landed: its writes
            // are architecturally committed, keep them.
            c.undoLog.clear();
            continue;
        }
        squashContext(static_cast<CtxId>(ctx));
    }
}

void
OooCore::squashContext(CtxId ctx)
{
    CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
    // Discard the thread's store buffer: roll its writes back in
    // reverse order so the re-run starts from the memory state the
    // original spawn saw. Without this, a partially executed
    // non-idempotent handler (e.g. ammp's delta-maintained stripe
    // accumulators) corrupts state the re-run cannot repair.
    for (auto it = c.undoLog.rbegin(); it != c.undoLog.rend(); ++it)
        memory_.write(it->addr, it->size, it->oldValue);
    c.undoLog.clear();
    // Balance the fetch-time inflight count of every uncommitted
    // triggering store, or TWAIT would wait on it forever. This
    // covers a commit-stalled tstore at the ROB head too.
    if (accel_ != nullptr) {
        for (std::size_t i = 0; i < c.frontend.size(); ++i) {
            const DynInst &di = *c.frontend.at(i);
            if (di.info.isTstore)
                accel_->tstoreDone(di.info.inst.trig);
        }
        for (std::size_t i = 0; i < c.rob.size(); ++i) {
            const DynInst &di = *c.rob.at(i);
            if (di.info.isTstore)
                accel_->tstoreDone(di.info.inst.trig);
        }
    }
    // Purge the context's instructions from the shared structures
    // before recycling them into the arena. Dependence edges never
    // cross contexts (lastWriter is per-context), so no stale
    // consumer pointer can survive in another context.
    std::erase_if(iq_, [ctx](DynInst *d) { return d->ctx == ctx; });
    for (auto &slot : wheel_)
        std::erase_if(slot,
                      [ctx](DynInst *d) { return d->ctx == ctx; });
    robUsed_ -= c.robUsed;
    iqUsed_ -= c.iqUsed;
    lqUsed_ -= c.lqUsed;
    sqUsed_ -= c.sqUsed;
    c.robUsed = c.iqUsed = c.lqUsed = c.sqUsed = 0;
    for (std::size_t i = 0; i < c.frontend.size(); ++i)
        freeInst(c.frontend.at(i));
    for (std::size_t i = 0; i < c.rob.size(); ++i)
        freeInst(c.rob.at(i));
    c.frontend.clear();
    c.rob.clear();
    std::fill(&c.lastWriter[0][0], &c.lastWriter[0][0] + 64, nullptr);
    c.active = false;
    c.fetchStopped = false;
    c.fetchBlockedOnBranch = false;
    c.twaitBlocked = false;
    c.curFetchLine = ~0ull;
    if (trace_ != nullptr)
        std::fprintf(trace_, "%8llu SQU c%d trigger %d (fault)\n",
                     static_cast<unsigned long long>(now_), ctx,
                     c.spawnTrig);
    ++stats_.counter("faultSquashedThreads");
    if (accel_ != nullptr)
        accel_->threadSquashed(ctx, c.spawnAddr, c.spawnValue);
}

void
OooCore::tick()
{
    if (plan_ != nullptr) {
        plan_->onCycle(now_);
        applyFaultSquashes();
    }
    std::fill(std::begin(fuUsed_), std::end(fuUsed_), 0);
    doComplete();
    doCommit();
    doIssue();
    doDispatch();
    if (accel_ != nullptr)
        accel_->tick();
    doFetch();
    if (ctxs_[0].twaitBlocked)
        ++*cntTwaitStalls_;
    ++now_;
    ++*cntCycles_;

    // Forward-progress watchdog: convert a silent livelock (e.g. a
    // commit-stalled tstore on a Stall-policy machine with no context
    // free to drain the queue) into a structured Deadlock halt with a
    // per-context state dump instead of burning the maxCycles budget.
    if (config_.watchdogWindow > 0 && !deadlocked_
        && now_ - lastCommit_ > config_.watchdogWindow) {
        std::string state;
        for (int ctx = 0; ctx < config_.numContexts; ++ctx) {
            const CtxState &c = ctxs_[static_cast<std::size_t>(ctx)];
            state += strfmt(
                " ctx%d{active=%d pc=%llu rob=%zu fe=%zu twait=%d}",
                ctx, c.active ? 1 : 0,
                static_cast<unsigned long long>(c.arch.pc),
                c.rob.size(), c.frontend.size(),
                c.twaitBlocked ? 1 : 0);
        }
        deadlocked_ = true;
        deadlockDetail_ = strfmt(
            "no commit for %llu cycles at cycle %llu:%s",
            static_cast<unsigned long long>(config_.watchdogWindow),
            static_cast<unsigned long long>(now_), state.c_str());
    }
}

CoreRunResult
OooCore::run(Cycle max_cycles)
{
    while (!halted_ && !deadlocked_ && now_ < max_cycles)
        tick();

    CoreRunResult r;
    r.cycles = now_;
    r.mainCommitted = mainCommitted_;
    r.dttCommitted = dttCommitted_;
    r.dttSpawns = dttSpawns_;
    r.halted = halted_;
    r.hitMaxCycles = !halted_ && !deadlocked_;
    r.reason = halted_ ? HaltReason::Halted
        : deadlocked_ ? HaltReason::Deadlock : HaltReason::CycleLimit;
    r.detail = deadlockDetail_;
    return r;
}

} // namespace dttsim::cpu
