#pragma once

/**
 * @file
 * Minimal power-of-two ring buffer used for the per-context frontend
 * and ROB queues. Unlike std::deque, a ring performs zero heap
 * traffic in steady state: capacity is reserved once (queue sizes are
 * bounded by the core config) and push/pop cycle through it. Growth
 * is still supported as a safety net for unusual configurations.
 */

#include <cstddef>
#include <vector>

namespace dttsim::cpu {

/** FIFO ring with O(1) indexed access from the front. */
template <typename T>
class InstRing
{
  public:
    /** Pre-size to at least @p capacity slots (rounded to pow2). */
    void
    reserve(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        if (cap > buf_.size())
            regrow(cap);
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    void
    push_back(T v)
    {
        if (count_ == buf_.size())
            regrow(buf_.empty() ? 2 : buf_.size() * 2);
        buf_[(head_ + count_) & mask_] = v;
        ++count_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[(head_ + count_ - 1) & mask_]; }

    /** @p i-th element counted from the front (0 == front()). */
    T &at(std::size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &at(std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    void
    regrow(std::size_t cap)
    {
        std::vector<T> bigger(cap);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(bigger);
        mask_ = cap - 1;
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace dttsim::cpu
