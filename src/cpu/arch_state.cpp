#include "cpu/arch_state.h"

// ArchState is header-only; this translation unit exists so the build
// system has a stable home if out-of-line members are added later.
