#pragma once

/**
 * @file
 * Pre-decoded static instruction properties, built once per
 * isa::Program and indexed by pc. The timing core's per-cycle loops
 * (fetch, dispatch dependence linking, issue) consult this dense
 * array instead of re-running the opInfo() / forEachSource() /
 * destReg() switch dispatch for every dynamic instruction — decode
 * work is proportional to the static program, not to the dynamic
 * instruction count (see docs/PERFORMANCE.md).
 *
 * The decode is purely a cache of static facts: source lists keep
 * forEachSource()'s exact order and duplicates, and the destination
 * obeys destReg()'s x0 rule, so consumers see identical semantics.
 */

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace dttsim::cpu {

/** Static per-pc facts used by the core's per-cycle loops. */
struct DecodedInst
{
    /** One source register operand, in forEachSource() order. */
    struct Src
    {
        bool fp = false;
        std::uint8_t idx = 0;
    };

    Cycle latency = 1;             ///< opInfo().latency
    std::uint8_t pool = 0;         ///< issue pool (see poolOfFu)
    std::uint8_t numSrc = 0;
    Src src[2];
    bool hasDest = false;          ///< destReg() returned true
    bool destFp = false;
    std::uint8_t destIdx = 0;
    bool reuseEligible = false;    ///< may hit the HW reuse buffer
    bool isTwait = false;
    bool stopsFetch = false;       ///< TRET or HALT
};

/** Map an FU class onto one of the 5 configured issue pools. */
int poolOfFu(isa::FuClass fu);

/** Decode every static instruction of @p prog (indexed by pc). */
std::vector<DecodedInst> decodeProgram(const isa::Program &prog);

} // namespace dttsim::cpu
