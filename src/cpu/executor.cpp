#include "cpu/executor.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/log.h"
#include "isa/program.h"

namespace dttsim::cpu {

namespace {

std::int64_t
asSigned(std::uint64_t v)
{
    return static_cast<std::int64_t>(v);
}

/** Signed division avoiding UB on INT64_MIN / -1 and /0. */
std::int64_t
safeDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return a;
    return a / b;
}

std::int64_t
safeRem(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return 0;
    return a % b;
}

/** Truncate a double to int64, clamping NaN/inf/overflow. */
std::int64_t
toInt(double d)
{
    if (std::isnan(d))
        return 0;
    if (d >= 9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::max();
    if (d <= -9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(d);
}

/** Truncate a store value to the access size. */
std::uint64_t
sized(std::uint64_t v, int size)
{
    switch (size) {
      case 1: return v & 0xffull;
      case 4: return v & 0xffffffffull;
      default: return v;
    }
}

} // namespace

StepInfo
step(ArchState &st, mem::Memory &memory, const isa::Program &prog,
     DttHooks *hooks)
{
    using isa::Opcode;

    StepInfo info;
    const isa::Inst &inst = prog.at(st.pc);
    info.inst = inst;
    info.pc = st.pc;
    std::uint64_t next = st.pc + 1;

    auto a = [&] { return st.getX(inst.rs1); };
    auto b = [&] { return st.getX(inst.rs2); };
    auto fa = [&] { return st.getF(inst.rs1); };
    auto fb = [&] { return st.getF(inst.rs2); };
    auto setRd = [&](std::uint64_t v) { st.setX(inst.rd, v); };
    auto setFd = [&](double v) { st.setF(inst.rd, v); };
    auto memAddr = [&] {
        return st.getX(inst.rs1) + static_cast<std::uint64_t>(inst.imm);
    };
    auto branch = [&](bool cond) {
        info.isControl = true;
        if (cond) {
            info.taken = true;
            next = static_cast<std::uint64_t>(inst.imm);
        }
    };
    auto doLoad = [&](int size) {
        Addr addr = memAddr();
        std::uint64_t v = memory.read(addr, size);
        info.mem = MemEffect{true, true, addr, size, v, 0};
        return v;
    };
    auto doStore = [&](int size, std::uint64_t v) {
        Addr addr = memAddr();
        std::uint64_t old = memory.read(addr, size);
        std::uint64_t nv = sized(v, size);
        memory.write(addr, size, nv);
        info.mem = MemEffect{true, false, addr, size, nv, old};
    };

    switch (inst.op) {
      case Opcode::ADD: setRd(a() + b()); break;
      case Opcode::SUB: setRd(a() - b()); break;
      case Opcode::MUL: setRd(a() * b()); break;
      case Opcode::DIV:
        setRd(static_cast<std::uint64_t>(
            safeDiv(asSigned(a()), asSigned(b()))));
        break;
      case Opcode::REM:
        setRd(static_cast<std::uint64_t>(
            safeRem(asSigned(a()), asSigned(b()))));
        break;
      case Opcode::AND: setRd(a() & b()); break;
      case Opcode::OR: setRd(a() | b()); break;
      case Opcode::XOR: setRd(a() ^ b()); break;
      case Opcode::SLL: setRd(a() << (b() & 63)); break;
      case Opcode::SRL: setRd(a() >> (b() & 63)); break;
      case Opcode::SRA:
        setRd(static_cast<std::uint64_t>(asSigned(a())
                                         >> (b() & 63)));
        break;
      case Opcode::SLT:
        setRd(asSigned(a()) < asSigned(b()) ? 1 : 0);
        break;
      case Opcode::SLTU: setRd(a() < b() ? 1 : 0); break;

      case Opcode::ADDI:
        setRd(a() + static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::ANDI:
        setRd(a() & static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::ORI:
        setRd(a() | static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::XORI:
        setRd(a() ^ static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::SLLI: setRd(a() << (inst.imm & 63)); break;
      case Opcode::SRLI: setRd(a() >> (inst.imm & 63)); break;
      case Opcode::SRAI:
        setRd(static_cast<std::uint64_t>(asSigned(a())
                                         >> (inst.imm & 63)));
        break;
      case Opcode::SLTI:
        setRd(asSigned(a()) < inst.imm ? 1 : 0);
        break;
      case Opcode::LI:
        setRd(static_cast<std::uint64_t>(inst.imm));
        break;

      case Opcode::LD: setRd(doLoad(8)); break;
      case Opcode::LW: {
        std::uint64_t v = doLoad(4);
        setRd(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(v))));
        break;
      }
      case Opcode::LB: setRd(doLoad(1)); break;
      case Opcode::SD: doStore(8, b()); break;
      case Opcode::SW: doStore(4, b()); break;
      case Opcode::SB: doStore(1, b()); break;

      case Opcode::FLD: {
        Addr addr = memAddr();
        double d = memory.readDouble(addr);
        std::uint64_t raw = memory.read64(addr);
        info.mem = MemEffect{true, true, addr, 8, raw, 0};
        setFd(d);
        break;
      }
      case Opcode::FSD: {
        double d = st.getF(inst.rs2);
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, 8);
        doStore(8, bits);
        break;
      }
      case Opcode::FLI: setFd(inst.fimm); break;
      case Opcode::FADD: setFd(fa() + fb()); break;
      case Opcode::FSUB: setFd(fa() - fb()); break;
      case Opcode::FMUL: setFd(fa() * fb()); break;
      case Opcode::FDIV: setFd(fa() / fb()); break;
      case Opcode::FSQRT: setFd(std::sqrt(fa())); break;
      case Opcode::FMIN: setFd(std::fmin(fa(), fb())); break;
      case Opcode::FMAX: setFd(std::fmax(fa(), fb())); break;
      case Opcode::FNEG: setFd(-fa()); break;
      case Opcode::FABS: setFd(std::fabs(fa())); break;
      case Opcode::FCVTDW:
        setFd(static_cast<double>(asSigned(a())));
        break;
      case Opcode::FCVTWD:
        setRd(static_cast<std::uint64_t>(toInt(fa())));
        break;
      case Opcode::FEQ: setRd(fa() == fb() ? 1 : 0); break;
      case Opcode::FLT: setRd(fa() < fb() ? 1 : 0); break;
      case Opcode::FLE: setRd(fa() <= fb() ? 1 : 0); break;

      case Opcode::BEQ: branch(a() == b()); break;
      case Opcode::BNE: branch(a() != b()); break;
      case Opcode::BLT: branch(asSigned(a()) < asSigned(b())); break;
      case Opcode::BGE: branch(asSigned(a()) >= asSigned(b())); break;
      case Opcode::BLTU: branch(a() < b()); break;
      case Opcode::BGEU: branch(a() >= b()); break;
      case Opcode::JAL:
        setRd(st.pc + 1);
        info.isControl = true;
        info.taken = true;
        next = static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::JALR: {
        std::uint64_t target =
            a() + static_cast<std::uint64_t>(inst.imm);
        setRd(st.pc + 1);
        info.isControl = true;
        info.taken = true;
        next = target;
        break;
      }

      case Opcode::NOP: break;
      case Opcode::HALT:
        info.halted = true;
        next = st.pc;
        break;

      case Opcode::TREG:
        if (hooks)
            hooks->treg(inst.trig, static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::TUNREG:
        if (hooks)
            hooks->tunreg(inst.trig);
        break;
      case Opcode::TSD:
      case Opcode::TSW:
      case Opcode::TSB: {
        int size = isa::accessSize(inst.op);
        doStore(size, b());
        info.isTstore = true;
        info.trig = inst.trig;
        info.silent = info.mem.oldValue == info.mem.value;
        if (hooks)
            hooks->tstore(inst.trig, info.mem.addr, info.mem.oldValue,
                          info.mem.value, info.silent);
        break;
      }
      case Opcode::TWAIT:
        info.isTwait = true;
        info.trig = inst.trig;
        break;
      case Opcode::TCHK:
        setRd(static_cast<std::uint64_t>(
            hooks ? hooks->chk(inst.trig) : 0));
        info.trig = inst.trig;
        break;
      case Opcode::TCLR:
        if (hooks)
            hooks->tclr(inst.trig);
        info.trig = inst.trig;
        break;
      case Opcode::TRET:
        info.isTret = true;
        next = st.pc;  // context is retired by the caller
        break;

      case Opcode::NumOpcodes:
        panic("executed invalid opcode at pc %llu",
              static_cast<unsigned long long>(st.pc));
    }

    st.pc = next;
    info.nextPc = next;
    return info;
}

void
loadData(const isa::Program &prog, mem::Memory &memory)
{
    for (const auto &chunk : prog.dataChunks())
        memory.writeBytes(chunk.base, chunk.bytes.data(),
                          chunk.bytes.size());
}

std::uint64_t
stackFor(CtxId ctx)
{
    return isa::kStackTop
        - static_cast<std::uint64_t>(ctx) * isa::kStackSize;
}

// FunctionalRunner -----------------------------------------------------

FunctionalRunner::FunctionalRunner(isa::Program prog)
    : prog_(std::move(prog))
{
    loadData(prog_, memory_);
    main_.reset(prog_.entry(), stackFor(0));
}

FuncRunResult
FunctionalRunner::run(std::uint64_t max_insts)
{
    budget_ = max_insts;
    while (budget_ > 0) {
        --budget_;
        StepInfo info = step(main_, memory_, prog_, this);
        ++result_.mainInstructions;
        if (observer_)
            observer_(info, 0);
        if (info.halted) {
            result_.halted = true;
            break;
        }
        if (info.isTret)
            fatal("TRET executed by the main thread at pc %llu",
                  static_cast<unsigned long long>(info.pc));
    }
    return result_;
}

void
FunctionalRunner::tstore(TriggerId t, Addr addr, std::uint64_t old_val,
                         std::uint64_t new_val, bool silent)
{
    (void)old_val;
    ++result_.tstores;
    if (silent) {
        ++result_.silentTstores;
        return;
    }
    auto it = registry_.find(t);
    if (it == registry_.end())
        return;  // trigger fired with no registered handler
    runHandler(it->second, addr, new_val, curDepth_ + 1);
}

void
FunctionalRunner::treg(TriggerId t, std::uint64_t entry_pc)
{
    registry_[t] = entry_pc;
}

void
FunctionalRunner::tunreg(TriggerId t)
{
    registry_.erase(t);
}

void
FunctionalRunner::runHandler(std::uint64_t entry_pc, Addr addr,
                             std::uint64_t value, int depth)
{
    if (depth > kMaxDepth)
        fatal("DTT trigger nesting exceeds depth %d", kMaxDepth);
    ++result_.dttRuns;
    int saved_depth = curDepth_;
    curDepth_ = depth;

    ArchState st;
    st.reset(entry_pc, stackFor(depth));
    st.setX(10, addr);   // a0 = triggering address
    st.setX(11, value);  // a1 = stored value

    while (budget_ > 0) {
        --budget_;
        StepInfo info = step(st, memory_, prog_, this);
        ++result_.dttInstructions;
        if (observer_)
            observer_(info, depth);
        if (info.isTret) {
            curDepth_ = saved_depth;
            return;
        }
        if (info.halted)
            fatal("HALT executed inside a DTT handler at pc %llu",
                  static_cast<unsigned long long>(info.pc));
    }
    fatal("instruction budget exhausted inside DTT handler");
}

} // namespace dttsim::cpu
