#pragma once

/**
 * @file
 * Branch prediction: gshare direction predictor with per-context
 * global history, a direct-mapped tagged BTB for indirect targets, and
 * a per-context return-address stack. Tables are shared between SMT
 * contexts (main thread and DTTs), history and RAS are private — the
 * standard SMT arrangement.
 */

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "isa/inst.h"

namespace dttsim::cpu {

/** Predictor sizing. */
struct BpredConfig
{
    int historyBits = 12;    ///< gshare history/table index width
    int btbEntries = 2048;   ///< direct-mapped BTB entries
    int rasEntries = 16;     ///< return-address stack depth
    int numContexts = 4;     ///< hardware contexts (for history/RAS)
};

/** Direction + target prediction for one control instruction. */
struct Prediction
{
    bool taken = false;
    std::uint64_t target = 0;
};

/** gshare + BTB + RAS predictor. */
class Bpred
{
  public:
    explicit Bpred(const BpredConfig &config);

    /**
     * Predict a decoded control instruction at @p pc for context
     * @p ctx. Direct targets are exact (decoded form); JALR targets
     * come from the RAS (returns) or BTB (other indirects).
     */
    Prediction predict(CtxId ctx, std::uint64_t pc, const isa::Inst &inst);

    /**
     * Train with the actual outcome and, for calls/returns, maintain
     * the RAS. Must be called for every control instruction in fetch
     * order (we resolve at dispatch, which is fetch order per context).
     */
    void update(CtxId ctx, std::uint64_t pc, const isa::Inst &inst,
                bool taken, std::uint64_t target);

    /** Reset the private state of a context (on DTT spawn). */
    void resetContext(CtxId ctx);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    std::uint64_t gshareIndex(CtxId ctx, std::uint64_t pc) const;

    BpredConfig config_;
    std::uint64_t historyMask_;
    std::vector<std::uint8_t> counters_;     ///< 2-bit saturating
    struct BtbEntry
    {
        std::uint64_t pc = ~0ull;
        std::uint64_t target = 0;
    };
    std::vector<BtbEntry> btb_;
    std::vector<std::uint64_t> history_;      ///< per context
    std::vector<std::vector<std::uint64_t>> ras_;  ///< per context
    StatGroup stats_;
};

} // namespace dttsim::cpu
