#pragma once

/**
 * @file
 * Client side of the sweep fabric: endpoint parsing for the harness's
 * `--workers host:port,...` flag and a WorkerClient wrapping one
 * connected, handshaken daemon session.
 *
 * The connect-time hello exchange doubles as the per-worker health
 * check: an endpoint that cannot complete it within the timeout is
 * treated as down and the sweep proceeds without it. All failures are
 * return values — the dispatcher turns them into requeue-and-degrade,
 * never into a crash.
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace dttsim::net {

/** A "host:port" worker address. */
struct Endpoint
{
    std::string host;
    int port = 0;

    std::string spec() const
    {
        return host + ":" + std::to_string(port);
    }
};

/** Parse "host:port"; nullopt + @p error on a malformed spec. */
std::optional<Endpoint> parseEndpoint(const std::string &spec,
                                      std::string *error);

/** Parse a comma-separated endpoint list (the --workers flag);
 *  empty + @p error when any element is malformed. */
std::optional<std::vector<Endpoint>>
parseEndpointList(const std::string &csv, std::string *error);

/** One connected worker-daemon session (jobs may be pipelined). */
class WorkerClient
{
  public:
    /** Connect + hello handshake within @p timeout_seconds; the
     *  health check. nullptr + @p error on any failure. */
    static std::unique_ptr<WorkerClient>
    connect(const Endpoint &endpoint, double timeout_seconds,
            std::string *error);

    /** Send one job message. @return false on a write error (the
     *  worker is gone; requeue the job). */
    bool sendJob(std::uint64_t id, const sim::SimJob &job,
                 const std::string &digest, const RetryPolicy &policy);

    /** Read the next reply within @p timeout_seconds. @return false
     *  on timeout/EOF/garbage (treat the worker as lost). */
    bool recvResult(WireResult *out, double timeout_seconds,
                    std::string *error);

    /** The daemon's self-reported name from the handshake. */
    const std::string &peerName() const { return peerName_; }

  private:
    WorkerClient(TcpStream stream, std::string peer)
        : stream_(std::move(stream)), peerName_(std::move(peer))
    {
    }

    TcpStream stream_;
    std::string peerName_;
};

} // namespace dttsim::net
