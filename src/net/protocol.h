#pragma once

/**
 * @file
 * Wire protocol of the distributed sweep fabric: line-delimited JSON
 * messages between the harness's remote dispatcher (net::WorkerClient)
 * and the worker daemon (net::WorkerServer / tools/dttworkerd).
 *
 * One message per line, each a JSON object with a "type" member:
 *
 *     client -> server   {"type":"hello","proto":1,"name":...}
 *     server -> client   {"type":"hello-ok","proto":1,"name":...}
 *     client -> server   {"type":"job","id":N,"digest":...,
 *                         "policy":{...},"job":{...}}
 *     server -> client   {"type":"result","id":N,"digest":...,
 *                         "status":...,"attempts":N,
 *                         "wall_seconds":...,["error":{...},]
 *                         "result":{...},"crc":N}
 *     server -> client   {"type":"error","id":N,"message":...}
 *
 * "crc" is sim::recordCrc over the canonical payload (digest,
 * status, attempts, result); the daemon stamps it and the client
 * recomputes it after decoding — a mismatch is treated as a
 * corrupted frame and the session is abandoned (the job re-executes
 * elsewhere), never trusted into a cache.
 *
 * Jobs are pipelined: the client may have several "job" messages in
 * flight (its backpressure window); the server replies in completion
 * order and the client matches replies by id.
 *
 * Determinism contract: the SimJob codec is *bit-exact* — doubles
 * that feed the job digest (Inst::fimm, FaultConfig::rate) travel as
 * raw IEEE-754 bit patterns, and every field enumerated by
 * sim::jobDigest round-trips, so the digest the daemon recomputes
 * from the deserialized job equals the client's. Both sides check it
 * (the "digest" echo in the result message); a mismatch means the
 * codec and the digest drifted apart, and the client falls back to
 * local execution rather than trusting the record.
 *
 * The retry policy rides inside the job message so a remote attempt
 * count matches what a local run of the same sweep would record —
 * required for merged output to stay byte-identical to a local run.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.h"
#include "sim/engine.h"

namespace dttsim::net {

/** Protocol version; bumped on any incompatible message change.
 *  hello/hello-ok exchange it and mismatches refuse the session. */
inline constexpr int kProtocolVersion = 1;

/** Supervision policy shipped with each job so the daemon retries
 *  exactly like a local engine would (attempt counts are part of the
 *  emitted records). */
struct RetryPolicy
{
    int maxAttempts = 1;
    double retryBackoffSeconds = 0.0;
    bool retryTimeouts = false;
    double jobDeadlineSeconds = 0.0;
};

/** A decoded "job" message. */
struct JobRequest
{
    std::uint64_t id = 0;
    /** Client-side jobDigest — the daemon recomputes and must match. */
    std::string digest;
    sim::SimJob job;
    RetryPolicy policy;
};

/** A decoded "result" or "error" reply. */
struct WireResult
{
    std::uint64_t id = 0;
    /** True for "result"; false for "error" (daemon-level reject —
     *  message says why, the payload fields are meaningless). */
    bool ok = false;
    std::string message;
    std::string digest;
    sim::JobStatus status = sim::JobStatus::Error;
    int attempts = 1;
    double wallSeconds = 0.0;
    sim::JobError error;
    sim::SimResult result;
};

// --- handshake ---

json::Value helloMessage(const std::string &name);
json::Value helloOkMessage(const std::string &name);

/** Validate a hello/hello-ok of @p expect_type; returns the peer's
 *  name, or nullopt + @p error (bad type, version mismatch). */
std::optional<std::string> checkHello(const json::Value &v,
                                      const std::string &expect_type,
                                      std::string *error);

// --- jobs ---

json::Value jobMessage(std::uint64_t id, const sim::SimJob &job,
                       const std::string &digest,
                       const RetryPolicy &policy);

std::optional<JobRequest> tryJobRequestFromJson(const json::Value &v,
                                                std::string *error);

// --- replies ---

json::Value resultMessage(std::uint64_t id, const std::string &digest,
                          const sim::JobResult &jr);

json::Value errorMessage(std::uint64_t id, const std::string &message);

std::optional<WireResult> tryWireResultFromJson(const json::Value &v,
                                                std::string *error);

// --- SimJob codec (exposed for the round-trip tests) ---

json::Value simJobToJson(const sim::SimJob &job);

std::optional<sim::SimJob> trySimJobFromJson(const json::Value &v,
                                             std::string *error);

} // namespace dttsim::net
