#include "net/protocol.h"

#include <cstring>

#include "common/log.h"
#include "cpu/accelerator.h"
#include "isa/opcodes.h"

namespace dttsim::net {

namespace {

using json::Value;

std::uint64_t
bitsOfDouble(double d)
{
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof u);
    return u;
}

double
doubleFromBits(std::uint64_t u)
{
    double d;
    std::memcpy(&d, &u, sizeof d);
    return d;
}

bool
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what;
    return false;
}

bool
getInt(const Value &o, const char *key, int *out, std::string *error)
{
    const Value *f = o.find(key);
    if (f == nullptr || !f->isNumber())
        return fail(error, std::string("'") + key
                    + "' missing or not a number");
    *out = static_cast<int>(f->asInt());
    return true;
}

bool
getU64(const Value &o, const char *key, std::uint64_t *out,
       std::string *error)
{
    const Value *f = o.find(key);
    if (f == nullptr || !f->isUint())
        return fail(error, std::string("'") + key
                    + "' missing or not an unsigned integer");
    *out = f->asUint();
    return true;
}

bool
getBool(const Value &o, const char *key, bool *out, std::string *error)
{
    const Value *f = o.find(key);
    if (f == nullptr || !f->isBool())
        return fail(error, std::string("'") + key
                    + "' missing or not a bool");
    *out = f->asBool();
    return true;
}

bool
getStr(const Value &o, const char *key, std::string *out,
       std::string *error)
{
    const Value *f = o.find(key);
    if (f == nullptr || !f->isString())
        return fail(error, std::string("'") + key
                    + "' missing or not a string");
    *out = f->asString();
    return true;
}

const Value *
getObj(const Value &o, const char *key, std::string *error)
{
    const Value *f = o.find(key);
    if (f == nullptr || !f->isObject()) {
        fail(error, std::string("'") + key
             + "' missing or not an object");
        return nullptr;
    }
    return f;
}

std::string
hexEncode(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
hexDecode(const std::string &hex, std::vector<std::uint8_t> *out,
          std::string *error)
{
    if (hex.size() % 2 != 0)
        return fail(error, "odd-length hex data");
    auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    out->clear();
    out->reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = nib(hex[i]);
        int lo = nib(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return fail(error, "non-hex character in data");
        out->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return true;
}

// Shared field lists keep the writer and the reader mechanically in
// sync — the same X-macro emits both sides, mirroring how engine.cpp
// locks the SimResult schema. Every field sim::jobDigest hashes is
// listed here (the daemon-side digest check enforces it end to end).

#define DTTSIM_NET_CORE_INT(X) \
    X(numContexts) X(fetchWidth) X(fetchThreads) X(fetchBlockInsts) \
    X(frontendDepth) X(frontendQSize) X(dispatchWidth) X(issueWidth) \
    X(commitWidth) X(robSize) X(iqSize) X(lqSize) X(sqSize) \
    X(queueReservePerCtx) X(intAlu) X(intMulDiv) X(fpAlu) \
    X(fpMulDiv) X(memPorts) X(mispredictPenalty) X(reuseEntriesPerPc)

#define DTTSIM_NET_BPRED_INT(X) \
    X(historyBits) X(btbEntries) X(rasEntries) X(numContexts)

#define DTTSIM_NET_DTT_INT(X) \
    X(maxTriggers) X(threadQueueSize) X(stallBound)

#define DTTSIM_NET_DTT_BOOL(X) \
    X(silentSuppression) X(coalesce) X(serializePerTrigger)

#define DTTSIM_NET_SP_INT(X) X(maxTriggers) X(tokenQueueSize)

#define DTTSIM_NET_SP_BOOL(X) X(skipWhenBusy) X(serializePerTrigger)

#define PUT_INT(name) v.set(#name, Value(s.name));
#define PUT_U64(name) \
    v.set(#name, Value(static_cast<std::uint64_t>(s.name)));
#define PUT_BOOL(name) v.set(#name, Value(s.name));
#define GET_INT(name) \
    if (!getInt(o, #name, &s.name, error)) \
        return false;
#define GET_U64(name) \
    { \
        std::uint64_t u; \
        if (!getU64(o, #name, &u, error)) \
            return false; \
        s.name = static_cast<decltype(s.name)>(u); \
    }
#define GET_BOOL(name) \
    if (!getBool(o, #name, &s.name, error)) \
        return false;

Value
bpredToJson(const cpu::BpredConfig &s)
{
    Value v = Value::object();
    DTTSIM_NET_BPRED_INT(PUT_INT)
    return v;
}

bool
bpredFromJson(const Value &o, cpu::BpredConfig &s, std::string *error)
{
    DTTSIM_NET_BPRED_INT(GET_INT)
    return true;
}

Value
coreToJson(const cpu::CoreConfig &s)
{
    Value v = Value::object();
    DTTSIM_NET_CORE_INT(PUT_INT)
    PUT_U64(watchdogWindow)
    PUT_BOOL(reuseBuffer)
    v.set("bpred", bpredToJson(s.bpred));
    return v;
}

bool
coreFromJson(const Value &o, cpu::CoreConfig &s, std::string *error)
{
    DTTSIM_NET_CORE_INT(GET_INT)
    GET_U64(watchdogWindow)
    GET_BOOL(reuseBuffer)
    const Value *bv = getObj(o, "bpred", error);
    if (bv == nullptr || !bpredFromJson(*bv, s.bpred, error))
        return false;
    return true;
}

Value
cacheToJson(const mem::CacheConfig &s)
{
    // CacheConfig::name is stats labelling, not simulation behaviour
    // (and not digest-hashed) — the receiver keeps its level default.
    Value v = Value::object();
    PUT_U64(sizeBytes)
    PUT_U64(assoc)
    PUT_U64(lineBytes)
    PUT_U64(hitLatency)
    return v;
}

bool
cacheFromJson(const Value &o, mem::CacheConfig &s, std::string *error)
{
    GET_U64(sizeBytes)
    GET_U64(assoc)
    GET_U64(lineBytes)
    GET_U64(hitLatency)
    return true;
}

Value
memToJson(const mem::HierarchyConfig &s)
{
    Value v = Value::object();
    v.set("l1i", cacheToJson(s.l1i));
    v.set("l1d", cacheToJson(s.l1d));
    v.set("l2", cacheToJson(s.l2));
    PUT_U64(memLatency)
    PUT_BOOL(modelFills)
    PUT_INT(mshrs)
    PUT_BOOL(nextLinePrefetch)
    return v;
}

bool
memFromJson(const Value &o, mem::HierarchyConfig &s, std::string *error)
{
    for (auto [key, cc] : {std::pair{"l1i", &s.l1i},
                           std::pair{"l1d", &s.l1d},
                           std::pair{"l2", &s.l2}}) {
        const Value *cv = getObj(o, key, error);
        if (cv == nullptr || !cacheFromJson(*cv, *cc, error))
            return false;
    }
    GET_U64(memLatency)
    GET_BOOL(modelFills)
    GET_INT(mshrs)
    GET_BOOL(nextLinePrefetch)
    return true;
}

Value
dttToJson(const dtt::DttConfig &s)
{
    Value v = Value::object();
    DTTSIM_NET_DTT_INT(PUT_INT)
    v.set("fullPolicy", Value(static_cast<std::uint64_t>(
        s.fullPolicy)));
    DTTSIM_NET_DTT_BOOL(PUT_BOOL)
    PUT_U64(spawnLatency)
    return v;
}

bool
dttFromJson(const Value &o, dtt::DttConfig &s, std::string *error)
{
    DTTSIM_NET_DTT_INT(GET_INT)
    std::uint64_t policy;
    if (!getU64(o, "fullPolicy", &policy, error))
        return false;
    if (policy > static_cast<std::uint64_t>(
            dtt::FullQueuePolicy::StallBounded))
        return fail(error, "'fullPolicy' out of range");
    s.fullPolicy = static_cast<dtt::FullQueuePolicy>(policy);
    DTTSIM_NET_DTT_BOOL(GET_BOOL)
    GET_U64(spawnLatency)
    return true;
}

Value
spToJson(const sp::SpConfig &s)
{
    Value v = Value::object();
    DTTSIM_NET_SP_INT(PUT_INT)
    DTTSIM_NET_SP_BOOL(PUT_BOOL)
    PUT_U64(spawnLatency)
    return v;
}

bool
spFromJson(const Value &o, sp::SpConfig &s, std::string *error)
{
    DTTSIM_NET_SP_INT(GET_INT)
    DTTSIM_NET_SP_BOOL(GET_BOOL)
    GET_U64(spawnLatency)
    return true;
}

Value
configToJson(const sim::SimConfig &cfg)
{
    Value v = Value::object();
    v.set("core", coreToJson(cfg.core));
    v.set("mem", memToJson(cfg.mem));
    v.set("accel", Value(std::string(cpu::accelKindName(cfg.accel))));
    v.set("dtt", dttToJson(cfg.dtt));
    v.set("sp", spToJson(cfg.sp));
    {
        Value rv = Value::object();
        rv.set("entriesPerPc", Value(cfg.reuse.entriesPerPc));
        v.set("reuse", std::move(rv));
    }
    v.set("maxCycles", Value(static_cast<std::uint64_t>(
        cfg.maxCycles)));
    {
        Value fv = Value::object();
        fv.set("seed", Value(cfg.fault.seed));
        // Bit pattern, not decimal text: the rate feeds the job
        // digest as raw bytes, so the round-trip must be bit-exact
        // even for values %.17g would normalize.
        fv.set("rateBits", Value(bitsOfDouble(cfg.fault.rate)));
        fv.set("siteMask", Value(static_cast<std::uint64_t>(
            cfg.fault.siteMask)));
        v.set("fault", std::move(fv));
    }
    v.set("shadowProfile", Value(cfg.shadowProfile));
    return v;
}

bool
configFromJson(const Value &o, sim::SimConfig &cfg, std::string *error)
{
    const Value *core = getObj(o, "core", error);
    if (core == nullptr || !coreFromJson(*core, cfg.core, error))
        return false;
    const Value *memv = getObj(o, "mem", error);
    if (memv == nullptr || !memFromJson(*memv, cfg.mem, error))
        return false;
    std::string accel;
    if (!getStr(o, "accel", &accel, error))
        return false;
    std::optional<cpu::AccelKind> kind = cpu::accelKindFromName(accel);
    if (!kind)
        return fail(error, "unknown accel '" + accel + "'");
    cfg.accel = *kind;
    const Value *dttv = getObj(o, "dtt", error);
    if (dttv == nullptr || !dttFromJson(*dttv, cfg.dtt, error))
        return false;
    const Value *spv = getObj(o, "sp", error);
    if (spv == nullptr || !spFromJson(*spv, cfg.sp, error))
        return false;
    const Value *rv = getObj(o, "reuse", error);
    if (rv == nullptr
        || !getInt(*rv, "entriesPerPc", &cfg.reuse.entriesPerPc,
                   error))
        return false;
    std::uint64_t maxCycles;
    if (!getU64(o, "maxCycles", &maxCycles, error))
        return false;
    cfg.maxCycles = maxCycles;
    const Value *fv = getObj(o, "fault", error);
    if (fv == nullptr)
        return false;
    std::uint64_t rateBits, siteMask;
    if (!getU64(*fv, "seed", &cfg.fault.seed, error)
        || !getU64(*fv, "rateBits", &rateBits, error)
        || !getU64(*fv, "siteMask", &siteMask, error))
        return false;
    cfg.fault.rate = doubleFromBits(rateBits);
    cfg.fault.siteMask = static_cast<std::uint32_t>(siteMask);
    if (!getBool(o, "shadowProfile", &cfg.shadowProfile, error))
        return false;
    return true;
}

Value
programToJson(const isa::Program &prog)
{
    Value v = Value::object();
    v.set("entry", Value(prog.entry()));
    Value text = Value::array();
    for (const isa::Inst &inst : prog.text()) {
        // One compact array per instruction; fimm travels as its
        // IEEE-754 bit pattern (digest bit-exactness, see file
        // comment in protocol.h).
        Value iv = Value::array();
        iv.push(Value(std::string(isa::mnemonic(inst.op))));
        iv.push(Value(static_cast<std::uint64_t>(inst.rd)));
        iv.push(Value(static_cast<std::uint64_t>(inst.rs1)));
        iv.push(Value(static_cast<std::uint64_t>(inst.rs2)));
        iv.push(Value(static_cast<std::int64_t>(inst.trig)));
        iv.push(Value(inst.imm));
        iv.push(Value(bitsOfDouble(inst.fimm)));
        text.push(std::move(iv));
    }
    v.set("text", std::move(text));
    Value data = Value::array();
    for (const isa::DataChunk &chunk : prog.dataChunks()) {
        Value cv = Value::object();
        cv.set("base", Value(chunk.base));
        cv.set("hex", Value(hexEncode(chunk.bytes)));
        data.push(std::move(cv));
    }
    v.set("data", std::move(data));
    v.set("dataEnd", Value(prog.dataEnd()));
    v.set("numTriggers", Value(prog.numTriggers()));
    return v;
}

bool
programFromJson(const Value &o, isa::Program &prog, std::string *error)
{
    const Value *text = o.find("text");
    if (text == nullptr || !text->isArray())
        return fail(error, "'text' missing or not an array");
    for (std::size_t i = 0; i < text->size(); ++i) {
        const Value &iv = text->at(i);
        if (!iv.isArray() || iv.size() != 7)
            return fail(error, "instruction is not a 7-element array");
        if (!iv.at(0).isString())
            return fail(error, "instruction mnemonic is not a string");
        isa::Inst inst;
        inst.op = isa::parseMnemonic(iv.at(0).asString());
        if (inst.op == isa::Opcode::NumOpcodes)
            return fail(error, "unknown mnemonic '"
                        + iv.at(0).asString() + "'");
        for (int k = 1; k <= 3; ++k)
            if (!iv.at(k).isUint() || iv.at(k).asUint() > 0xff)
                return fail(error, "instruction register out of range");
        inst.rd = static_cast<std::uint8_t>(iv.at(1).asUint());
        inst.rs1 = static_cast<std::uint8_t>(iv.at(2).asUint());
        inst.rs2 = static_cast<std::uint8_t>(iv.at(3).asUint());
        if (!iv.at(4).isNumber() || !iv.at(5).isNumber()
            || !iv.at(6).isUint())
            return fail(error, "instruction operand field mistyped");
        inst.trig = static_cast<TriggerId>(iv.at(4).asInt());
        inst.imm = iv.at(5).asInt();
        inst.fimm = doubleFromBits(iv.at(6).asUint());
        prog.append(inst);
        if (inst.trig >= 0)
            prog.noteTrigger(inst.trig);
    }
    std::uint64_t entry;
    if (!getU64(o, "entry", &entry, error))
        return false;
    prog.setEntry(entry);
    const Value *data = o.find("data");
    if (data == nullptr || !data->isArray())
        return fail(error, "'data' missing or not an array");
    std::vector<isa::DataChunk> chunks;
    for (std::size_t i = 0; i < data->size(); ++i) {
        const Value &cv = data->at(i);
        if (!cv.isObject())
            return fail(error, "data chunk is not an object");
        isa::DataChunk chunk;
        if (!getU64(cv, "base", &chunk.base, error))
            return false;
        std::string hex;
        if (!getStr(cv, "hex", &hex, error)
            || !hexDecode(hex, &chunk.bytes, error))
            return false;
        chunks.push_back(std::move(chunk));
    }
    std::uint64_t dataEnd;
    if (!getU64(o, "dataEnd", &dataEnd, error))
        return false;
    prog.restoreDataLayout(std::move(chunks), dataEnd);
    int numTriggers;
    if (!getInt(o, "numTriggers", &numTriggers, error))
        return false;
    // noteTrigger in the text loop gets us most of the way; the
    // explicit count covers triggers registered without a text use.
    if (numTriggers > 0)
        prog.noteTrigger(numTriggers - 1);
    if (prog.numTriggers() != numTriggers)
        return fail(error, "'numTriggers' below the text's trigger "
                           "usage");
    return true;
}

#undef PUT_INT
#undef PUT_U64
#undef PUT_BOOL
#undef GET_INT
#undef GET_U64
#undef GET_BOOL

} // namespace

json::Value
helloMessage(const std::string &name)
{
    Value v = Value::object();
    v.set("type", Value("hello"));
    v.set("proto", Value(static_cast<std::uint64_t>(
        kProtocolVersion)));
    v.set("name", Value(name));
    return v;
}

json::Value
helloOkMessage(const std::string &name)
{
    Value v = Value::object();
    v.set("type", Value("hello-ok"));
    v.set("proto", Value(static_cast<std::uint64_t>(
        kProtocolVersion)));
    v.set("name", Value(name));
    return v;
}

std::optional<std::string>
checkHello(const json::Value &v, const std::string &expect_type,
           std::string *error)
{
    auto bad = [&](const std::string &what)
        -> std::optional<std::string> {
        fail(error, what);
        return std::nullopt;
    };
    if (!v.isObject())
        return bad("handshake message is not an object");
    std::string type;
    if (!getStr(v, "type", &type, error))
        return std::nullopt;
    if (type != expect_type)
        return bad("expected '" + expect_type + "' handshake, got '"
                   + type + "'");
    std::uint64_t proto;
    if (!getU64(v, "proto", &proto, error))
        return std::nullopt;
    if (proto != static_cast<std::uint64_t>(kProtocolVersion))
        return bad("protocol version mismatch (peer "
                   + std::to_string(proto) + ", ours "
                   + std::to_string(kProtocolVersion) + ")");
    std::string name;
    if (!getStr(v, "name", &name, error))
        return std::nullopt;
    return name;
}

json::Value
simJobToJson(const sim::SimJob &job)
{
    Value v = Value::object();
    v.set("workload", Value(job.workload));
    v.set("variant", Value(job.variant));
    v.set("config", configToJson(job.config));
    v.set("program", programToJson(job.program));
    Value co = Value::array();
    for (std::uint64_t entry : job.coRunnerEntries)
        co.push(Value(entry));
    v.set("coRunnerEntries", std::move(co));
    return v;
}

std::optional<sim::SimJob>
trySimJobFromJson(const json::Value &v, std::string *error)
{
    if (!v.isObject()) {
        fail(error, "job is not an object");
        return std::nullopt;
    }
    sim::SimJob job;
    if (!getStr(v, "workload", &job.workload, error)
        || !getStr(v, "variant", &job.variant, error))
        return std::nullopt;
    const Value *cfg = getObj(v, "config", error);
    if (cfg == nullptr || !configFromJson(*cfg, job.config, error))
        return std::nullopt;
    const Value *prog = getObj(v, "program", error);
    if (prog == nullptr || !programFromJson(*prog, job.program, error))
        return std::nullopt;
    const Value *co = v.find("coRunnerEntries");
    if (co == nullptr || !co->isArray()) {
        fail(error, "'coRunnerEntries' missing or not an array");
        return std::nullopt;
    }
    for (std::size_t i = 0; i < co->size(); ++i) {
        if (!co->at(i).isUint()) {
            fail(error, "co-runner entry is not an unsigned integer");
            return std::nullopt;
        }
        job.coRunnerEntries.push_back(co->at(i).asUint());
    }
    return job;
}

json::Value
jobMessage(std::uint64_t id, const sim::SimJob &job,
           const std::string &digest, const RetryPolicy &policy)
{
    Value v = Value::object();
    v.set("type", Value("job"));
    v.set("id", Value(id));
    v.set("digest", Value(digest));
    {
        Value p = Value::object();
        p.set("maxAttempts", Value(static_cast<std::uint64_t>(
            policy.maxAttempts)));
        p.set("retryBackoffSeconds",
              Value(policy.retryBackoffSeconds));
        p.set("retryTimeouts", Value(policy.retryTimeouts));
        p.set("jobDeadlineSeconds",
              Value(policy.jobDeadlineSeconds));
        v.set("policy", std::move(p));
    }
    v.set("job", simJobToJson(job));
    return v;
}

std::optional<JobRequest>
tryJobRequestFromJson(const json::Value &v, std::string *error)
{
    if (!v.isObject()) {
        fail(error, "job message is not an object");
        return std::nullopt;
    }
    JobRequest req;
    std::string type;
    if (!getStr(v, "type", &type, error))
        return std::nullopt;
    if (type != "job") {
        fail(error, "expected a 'job' message, got '" + type + "'");
        return std::nullopt;
    }
    if (!getU64(v, "id", &req.id, error)
        || !getStr(v, "digest", &req.digest, error))
        return std::nullopt;
    const Value *p = getObj(v, "policy", error);
    if (p == nullptr)
        return std::nullopt;
    std::uint64_t attempts;
    if (!getU64(*p, "maxAttempts", &attempts, error))
        return std::nullopt;
    req.policy.maxAttempts = static_cast<int>(attempts);
    const Value *backoff = p->find("retryBackoffSeconds");
    const Value *deadline = p->find("jobDeadlineSeconds");
    if (backoff == nullptr || !backoff->isNumber()
        || deadline == nullptr || !deadline->isNumber()) {
        fail(error, "policy seconds fields missing or mistyped");
        return std::nullopt;
    }
    req.policy.retryBackoffSeconds = backoff->asDouble();
    req.policy.jobDeadlineSeconds = deadline->asDouble();
    if (!getBool(*p, "retryTimeouts", &req.policy.retryTimeouts,
                 error))
        return std::nullopt;
    const Value *jv = getObj(v, "job", error);
    if (jv == nullptr)
        return std::nullopt;
    std::optional<sim::SimJob> job = trySimJobFromJson(*jv, error);
    if (!job)
        return std::nullopt;
    req.job = std::move(*job);
    return req;
}

json::Value
resultMessage(std::uint64_t id, const std::string &digest,
              const sim::JobResult &jr)
{
    Value v = Value::object();
    v.set("type", Value("result"));
    v.set("id", Value(id));
    v.set("digest", Value(digest));
    v.set("status", Value(std::string(
        sim::jobStatusName(jr.status))));
    v.set("attempts", Value(static_cast<std::uint64_t>(
        jr.attempts)));
    v.set("wall_seconds", Value(jr.wallSeconds));
    if (!jr.error.empty()) {
        Value e = Value::object();
        e.set("kind", Value(jr.error.kind));
        e.set("message", Value(jr.error.message));
        v.set("error", std::move(e));
    }
    v.set("result", sim::resultToJson(jr.result));
    // End-to-end payload integrity: the daemon stamps the checksum
    // over the canonical payload and the client recomputes it after
    // decoding, so a bit flipped anywhere on the wire (or by a buggy
    // intermediary) is caught before the record reaches a cache.
    v.set("crc", Value(sim::recordCrc(digest, jr.status, jr.attempts,
                                      jr.result)));
    return v;
}

json::Value
errorMessage(std::uint64_t id, const std::string &message)
{
    Value v = Value::object();
    v.set("type", Value("error"));
    v.set("id", Value(id));
    v.set("message", Value(message));
    return v;
}

std::optional<WireResult>
tryWireResultFromJson(const json::Value &v, std::string *error)
{
    auto bad = [&](const std::string &what)
        -> std::optional<WireResult> {
        fail(error, what);
        return std::nullopt;
    };
    if (!v.isObject())
        return bad("reply is not an object");
    WireResult wr;
    std::string type;
    if (!getStr(v, "type", &type, error))
        return std::nullopt;
    if (type == "error") {
        wr.ok = false;
        if (!getU64(v, "id", &wr.id, error)
            || !getStr(v, "message", &wr.message, error))
            return std::nullopt;
        return wr;
    }
    if (type != "result")
        return bad("expected a 'result' reply, got '" + type + "'");
    wr.ok = true;
    if (!getU64(v, "id", &wr.id, error)
        || !getStr(v, "digest", &wr.digest, error))
        return std::nullopt;
    std::string status;
    if (!getStr(v, "status", &status, error))
        return std::nullopt;
    std::optional<sim::JobStatus> st = sim::jobStatusFromName(status);
    if (!st)
        return bad("unknown status '" + status + "'");
    wr.status = *st;
    std::uint64_t attempts;
    if (!getU64(v, "attempts", &attempts, error) || attempts < 1)
        return std::nullopt;
    wr.attempts = static_cast<int>(attempts);
    const Value *wall = v.find("wall_seconds");
    if (wall == nullptr || !wall->isNumber())
        return bad("'wall_seconds' missing or not a number");
    wr.wallSeconds = wall->asDouble();
    if (const Value *e = v.find("error")) {
        if (!e->isObject())
            return bad("'error' is not an object");
        if (!getStr(*e, "kind", &wr.error.kind, error)
            || !getStr(*e, "message", &wr.error.message, error))
            return std::nullopt;
    }
    const Value *rv = v.find("result");
    if (rv == nullptr)
        return bad("'result' missing");
    std::optional<sim::SimResult> r =
        sim::tryResultFromJson(*rv, error);
    if (!r)
        return std::nullopt;
    wr.result = *r;
    // The checksum is mandatory on result replies (both ends run the
    // same protocol version) and must match a recompute over the
    // decoded payload; a mismatch means the frame was corrupted in
    // flight, and the caller treats it like any other protocol loss
    // (job re-executes elsewhere).
    const Value *crc = v.find("crc");
    if (crc == nullptr || !crc->isUint())
        return bad("'crc' missing or not an unsigned integer");
    const std::uint64_t expect = sim::recordCrc(
        wr.digest, wr.status, wr.attempts, wr.result);
    if (crc->asUint() != expect)
        return bad(strfmt("result crc mismatch (wire %016llx, "
                          "recomputed %016llx): frame corrupted",
                          static_cast<unsigned long long>(
                              crc->asUint()),
                          static_cast<unsigned long long>(expect)));
    return wr;
}

} // namespace dttsim::net
