#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>

#include "common/log.h"
#include "sim/fabricfault.h"
#include "sim/resultstore.h"

namespace dttsim::net {

WorkerServer::WorkerServer(ServerConfig config)
    : config_(std::move(config))
{
    config_.jobs = std::max(1, config_.jobs);
    config_.maxQueue = std::max(1, config_.maxQueue);
}

WorkerServer::~WorkerServer()
{
    stop();
}

bool
WorkerServer::start(std::string *error)
{
    listener_ = TcpListener::bind(config_.bindHost, config_.port,
                                  error);
    if (!listener_)
        return false;
    running_ = true;
    return true;
}

int
WorkerServer::port() const
{
    return listener_ ? listener_->port() : 0;
}

void
WorkerServer::serveForever()
{
    while (running_) {
        std::optional<TcpStream> conn = listener_->accept(0.25);
        if (!conn)
            continue;
        std::lock_guard<std::mutex> lock(threadsMutex_);
        threads_.emplace_back(
            [this, s = std::move(*conn)]() mutable {
                serveConnection(std::move(s));
            });
    }
}

void
WorkerServer::stop()
{
    running_ = false;
    if (listener_)
        listener_->close();
    std::vector<std::thread> drain;
    {
        std::lock_guard<std::mutex> lock(threadsMutex_);
        drain.swap(threads_);
    }
    for (std::thread &t : drain)
        if (t.joinable())
            t.join();
}

void
WorkerServer::serveConnection(TcpStream stream)
{
    std::string line, err;
    if (!stream.readLine(&line, 10.0, &err))
        return;
    std::optional<json::Value> hello =
        json::Value::tryParse(line, &err);
    if (!hello) {
        stream.writeLine(
            errorMessage(0, "unparsable handshake: " + err).dump());
        return;
    }
    std::optional<std::string> peer =
        checkHello(*hello, "hello", &err);
    if (!peer) {
        stream.writeLine(errorMessage(0, err).dump());
        return;
    }
    if (!stream.writeLine(helloOkMessage(config_.name).dump()))
        return;

    // Bounded decoded-job queue: the backpressure point. Executors
    // drain it; the reader blocks when it is full, which stops
    // reading the socket, which fills the TCP window, which pauses
    // the client's dispatcher.
    std::deque<JobRequest> queue;
    std::mutex m;
    std::condition_variable cvFull, cvEmpty;
    bool done = false;
    std::mutex writeMutex;  // executors interleave whole reply lines

    auto writeReply = [&](const json::Value &msg) {
        std::lock_guard<std::mutex> lock(writeMutex);
        return stream.writeLine(msg.dump());
    };

    auto executor = [&]() {
        for (;;) {
            JobRequest req;
            {
                std::unique_lock<std::mutex> lock(m);
                cvEmpty.wait(lock,
                             [&] { return !queue.empty() || done; });
                if (queue.empty())
                    return;
                req = std::move(queue.front());
                queue.pop_front();
            }
            cvFull.notify_one();

            // Codec-integrity gate: the digest we compute over the
            // deserialized job must equal the client's, or the wire
            // codec and the digest have drifted — refuse rather than
            // let a mislabeled record into a shared cache.
            std::string digest = sim::jobDigest(req.job);
            if (digest != req.digest) {
                writeReply(errorMessage(
                    req.id,
                    "digest mismatch (client " + req.digest
                        + ", daemon " + digest
                        + "): protocol codec drift, refusing to "
                          "execute"));
                continue;
            }
            // The client's retry policy rides with the job so the
            // attempts field in the record matches what a local run
            // would have written (byte-identity of merged output).
            sim::EngineConfig ec;
            ec.numThreads = 1;
            ec.maxAttempts = std::max(1, req.policy.maxAttempts);
            ec.retryBackoffSeconds =
                std::max(0.0, req.policy.retryBackoffSeconds);
            ec.retryTimeouts = req.policy.retryTimeouts;
            ec.jobDeadlineSeconds =
                std::max(0.0, req.policy.jobDeadlineSeconds);
            ec.store = config_.store;
            sim::Engine engine(ec);
            std::vector<sim::JobResult> results =
                engine.run({req.job});
            jobsExecuted_.fetch_add(1, std::memory_order_relaxed);
            // Fabric chaos: a straggler — the result is ready but
            // the reply sits on the wire past the client's hedge
            // threshold.
            if (fabric::FaultPlan *fp = fabric::faultPlan();
                fp != nullptr
                && fp->inject(fabric::FaultSite::ReplyDelay))
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        fp->delaySeconds()));
            if (!writeReply(resultMessage(req.id, digest,
                                          results.at(0))))
                return;  // client gone; drain and exit
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(config_.jobs));
    for (int i = 0; i < config_.jobs; ++i)
        pool.emplace_back(executor);

    for (;;) {
        err.clear();
        if (!stream.readLine(&line, 0.5, &err)) {
            if (err == kReadTimedOut && running_)
                continue;  // idle tick; keep the session open
            break;         // EOF, error, or shutdown
        }
        std::optional<json::Value> msg =
            json::Value::tryParse(line, &err);
        std::optional<JobRequest> req;
        if (msg)
            req = tryJobRequestFromJson(*msg, &err);
        if (!req) {
            // A malformed line means the framing is gone; reply once
            // and drop the session (the client degrades to local).
            writeReply(errorMessage(0, "bad job message: " + err));
            break;
        }
        {
            std::unique_lock<std::mutex> lock(m);
            cvFull.wait(lock, [&] {
                return queue.size()
                           < static_cast<std::size_t>(config_.maxQueue)
                    || !running_;
            });
            if (!running_)
                break;
            queue.push_back(std::move(*req));
            jobsReceived_.fetch_add(1, std::memory_order_relaxed);
        }
        cvEmpty.notify_one();
    }

    // Bounded drain: give the executors until the deadline to finish
    // already-decoded jobs and stream their results, then abandon
    // whatever is still queued. Jobs an executor has started always
    // run to completion (it only checks the queue between jobs).
    {
        std::unique_lock<std::mutex> lock(m);
        const double ds = std::max(0.0, config_.drainDeadlineSeconds);
        auto deadline = std::chrono::steady_clock::now()
            + std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(ds));
        if (!cvFull.wait_until(lock, deadline,
                               [&] { return queue.empty(); })) {
            jobsAbandoned_.fetch_add(queue.size(),
                                     std::memory_order_relaxed);
            warn("dttworkerd: drain deadline (%gs) expired; "
                 "abandoning %zu queued job(s)",
                 ds, queue.size());
            queue.clear();
        }
        done = true;
    }
    cvEmpty.notify_all();
    for (std::thread &t : pool)
        t.join();
}

} // namespace dttsim::net
