#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "sim/fabricfault.h"

namespace dttsim::net {

namespace {

void
setError(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what;
}

/** Remaining milliseconds until @p deadline (clamped to [0, INT_MAX]). */
int
remainingMs(std::chrono::steady_clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now()).count();
    if (left < 0)
        return 0;
    if (left > 1'000'000'000)
        return 1'000'000'000;
    return static_cast<int>(left);
}

bool
setNonBlocking(int fd, bool on)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, flags) == 0;
}

} // namespace

TcpStream::~TcpStream()
{
    close();
}

TcpStream::TcpStream(TcpStream &&other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_))
{
    other.fd_ = -1;
}

TcpStream &
TcpStream::operator=(TcpStream &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

void
TcpStream::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

std::optional<TcpStream>
TcpStream::connect(const std::string &host, int port,
                   double timeout_seconds, std::string *error)
{
    auto deadline = std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_seconds));

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    std::string portStr = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), portStr.c_str(), &hints, &res);
    if (rc != 0) {
        setError(error, "resolve " + host + ": " + gai_strerror(rc));
        return std::nullopt;
    }

    std::string lastErr = "no addresses";
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family, ai->ai_socktype,
                          ai->ai_protocol);
        if (fd < 0) {
            lastErr = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        // Non-blocking connect so the timeout is ours, not the
        // kernel's (minutes of SYN retries would stall a sweep).
        if (!setNonBlocking(fd, true)) {
            lastErr = std::string("fcntl: ") + std::strerror(errno);
            ::close(fd);
            continue;
        }
        rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        if (rc != 0 && errno != EINPROGRESS) {
            lastErr = std::string("connect: ") + std::strerror(errno);
            ::close(fd);
            continue;
        }
        if (rc != 0) {
            pollfd pf{fd, POLLOUT, 0};
            rc = ::poll(&pf, 1, remainingMs(deadline));
            if (rc <= 0) {
                lastErr = rc == 0 ? "connect timed out"
                    : std::string("poll: ") + std::strerror(errno);
                ::close(fd);
                continue;
            }
            int soErr = 0;
            socklen_t len = sizeof soErr;
            if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len)
                    != 0 || soErr != 0) {
                lastErr = std::string("connect: ")
                    + std::strerror(soErr ? soErr : errno);
                ::close(fd);
                continue;
            }
        }
        setNonBlocking(fd, false);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        ::freeaddrinfo(res);
        return TcpStream(fd);
    }
    ::freeaddrinfo(res);
    setError(error, lastErr);
    return std::nullopt;
}

bool
TcpStream::writeLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
        ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
TcpStream::readLine(std::string *line, double timeout_seconds,
                    std::string *error)
{
    if (fd_ < 0) {
        setError(error, "stream closed");
        return false;
    }
    // Fabric chaos: the peer "vanishes" mid-frame. Closing our end
    // drops any half-read buffer, exactly like a cut network.
    if (fabric::FaultPlan *fp = fabric::faultPlan();
        fp != nullptr && fp->inject(fabric::FaultSite::MidFrameEof)) {
        close();
        setError(error,
                 "connection closed by peer (injected fabric fault)");
        return false;
    }
    auto deadline = std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_seconds));
    for (;;) {
        std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line->assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            // Fabric chaos: one frame arrives with a flipped byte —
            // the protocol layer must reject it, not trust it.
            if (fabric::FaultPlan *fp = fabric::faultPlan();
                fp != nullptr
                && fp->inject(fabric::FaultSite::CorruptFrame))
                fp->corruptLine(line);
            return true;
        }
        pollfd pf{fd_, POLLIN, 0};
        int rc = ::poll(&pf, 1, remainingMs(deadline));
        if (rc == 0) {
            setError(error, kReadTimedOut);
            return false;
        }
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            setError(error, std::string("poll: ")
                     + std::strerror(errno));
            return false;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n == 0) {
            setError(error, "connection closed by peer");
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, std::string("recv: ")
                     + std::strerror(errno));
            return false;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

TcpListener::~TcpListener()
{
    close();
}

TcpListener::TcpListener(TcpListener &&other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
      port_(other.port_)
{
    other.port_ = 0;
}

TcpListener &
TcpListener::operator=(TcpListener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
                  std::memory_order_release);
        port_ = other.port_;
        other.port_ = 0;
    }
    return *this;
}

void
TcpListener::close()
{
    // exchange() so a concurrent close (stop path vs destructor)
    // closes the descriptor exactly once.
    int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0)
        ::close(fd);
}

std::optional<TcpListener>
TcpListener::bind(const std::string &host, int port,
                  std::string *error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, std::string("socket: ") + std::strerror(errno));
        return std::nullopt;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        setError(error, "bad bind address '" + host
                 + "' (IPv4 dotted quad expected)");
        ::close(fd);
        return std::nullopt;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr)
            != 0) {
        setError(error, std::string("bind: ") + std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }
    if (::listen(fd, 64) != 0) {
        setError(error, std::string("listen: ") + std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }
    // Read the port back: bind(0) means the kernel picked one.
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len)
            != 0) {
        setError(error, std::string("getsockname: ")
                 + std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }
    TcpListener l;
    l.fd_ = fd;
    l.port_ = ntohs(bound.sin_port);
    return l;
}

std::optional<TcpStream>
TcpListener::accept(double timeout_seconds)
{
    // Snapshot the descriptor once: stop() may close() concurrently,
    // after which poll/accept on the stale fd fail and we return
    // nullopt — the serve loop then notices it is shutting down.
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0)
        return std::nullopt;
    auto deadline = std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_seconds));
    for (;;) {
        pollfd pf{fd, POLLIN, 0};
        int rc = ::poll(&pf, 1, remainingMs(deadline));
        if (rc == 0)
            return std::nullopt;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (pf.revents & (POLLNVAL | POLLERR | POLLHUP))
            return std::nullopt;
        int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return std::nullopt;
        }
        int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof one);
        return TcpStream(conn);
    }
}

} // namespace dttsim::net
