#pragma once

/**
 * @file
 * Server side of the sweep fabric: the engine behind tools/dttworkerd.
 * Accepts connections, handshakes, then executes pipelined job
 * messages through a supervised sim::Engine and streams result
 * records back.
 *
 * Threading model: one accept loop; per connection, the connection
 * thread reads and decodes job lines into a *bounded* queue and a
 * small executor pool drains it. The bound is the backpressure
 * mechanism — when executors fall behind, the reader blocks, the TCP
 * window fills, and the client's dispatcher stops sending (its own
 * in-flight window is bounded too), so a flood of jobs degrades to
 * steady streaming instead of unbounded daemon memory.
 *
 * The daemon recomputes sim::jobDigest over every deserialized job
 * and refuses to execute on a mismatch with the client's digest (an
 * "error" reply) — the codec-integrity check that keeps a drifted
 * binary from poisoning a shared cache.
 */

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace dttsim::sim {
class ResultStore;
} // namespace dttsim::sim

namespace dttsim::net {

/** Daemon configuration (tools/dttworkerd's flags). */
struct ServerConfig
{
    /** Bind address; loopback by default — exposing a daemon beyond
     *  the host is an explicit decision (--bind). */
    std::string bindHost = "127.0.0.1";
    /** Listen port; 0 picks an ephemeral port (read back via
     *  port()). */
    int port = 0;
    /** Concurrent job executions per connection. */
    int jobs = 1;
    /** Decoded jobs buffered per connection before the reader blocks
     *  (the backpressure bound). */
    int maxQueue = 32;
    /** Self-reported name in the hello-ok handshake. */
    std::string name = "dttworkerd";
    /** On shutdown/disconnect, seconds the connection waits for
     *  already-decoded jobs to finish and stream their results
     *  before abandoning the rest (0 abandons every queued job
     *  immediately; in-progress executions always complete). */
    double drainDeadlineSeconds = 10.0;
    /** Optional daemon-side result cache (warm starts across
     *  sessions); not owned, may be null. */
    sim::ResultStore *store = nullptr;
};

/** The worker daemon's accept/execute engine. */
class WorkerServer
{
  public:
    explicit WorkerServer(ServerConfig config);
    ~WorkerServer();

    WorkerServer(const WorkerServer &) = delete;
    WorkerServer &operator=(const WorkerServer &) = delete;

    /** Bind + listen. @return false + @p error on failure. */
    bool start(std::string *error);

    /** The bound port (valid after start()). */
    int port() const;

    /** Accept-and-serve until stop(). Blocks the calling thread. */
    void serveForever();

    /** Stop accepting, drain connections, join threads. Safe from
     *  another thread (tests) or a signal-triggered flag check. */
    void stop();

    /** Jobs executed since start (all connections). */
    std::uint64_t jobsExecuted() const { return jobsExecuted_; }

    /** Jobs decoded off the wire and queued for execution (tests
     *  poll this to know a burst has actually landed daemon-side
     *  before shutting down — a sleep would race the reader). */
    std::uint64_t jobsReceived() const { return jobsReceived_; }

    /** Decoded-but-unstarted jobs dropped because a connection's
     *  drain deadline expired. */
    std::uint64_t jobsAbandoned() const { return jobsAbandoned_; }

  private:
    void serveConnection(TcpStream stream);

    ServerConfig config_;
    std::optional<TcpListener> listener_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> jobsExecuted_{0};
    std::atomic<std::uint64_t> jobsReceived_{0};
    std::atomic<std::uint64_t> jobsAbandoned_{0};
    std::mutex threadsMutex_;
    std::vector<std::thread> threads_;
};

} // namespace dttsim::net
