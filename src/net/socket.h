#pragma once

/**
 * @file
 * Minimal blocking-with-deadline TCP transport for the distributed
 * sweep fabric (docs/HARNESS.md "Distributed sweeps"): a listener and
 * a buffered line-oriented stream, nothing more. Built directly on
 * POSIX sockets — the protocol above it is line-delimited JSON, so
 * the transport only needs connect/accept with timeouts, readLine
 * with a deadline, and writeLine.
 *
 * Every operation reports failure by return value (plus an error
 * string); nothing here throws or fatal()s — a dead worker is a
 * routine event the dispatcher degrades around, not a crash.
 */

#include <atomic>
#include <optional>
#include <string>

namespace dttsim::net {

/** readLine's timeout error string. Callers (the dispatcher's sliced
 *  receive loop, the server's reader) distinguish "no data yet" from
 *  a real transport failure by comparing against this exact text. */
inline constexpr const char *kReadTimedOut = "read timed out";

/** One connected TCP byte stream with buffered line reads. */
class TcpStream
{
  public:
    TcpStream() = default;
    ~TcpStream();
    TcpStream(TcpStream &&other) noexcept;
    TcpStream &operator=(TcpStream &&other) noexcept;
    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    /**
     * Connect to @p host:@p port (name resolution via getaddrinfo)
     * within @p timeout_seconds. nullopt + @p error on failure.
     */
    static std::optional<TcpStream> connect(const std::string &host,
                                            int port,
                                            double timeout_seconds,
                                            std::string *error);

    bool open() const { return fd_ >= 0; }

    /**
     * Write @p line plus a trailing newline, fully. SIGPIPE is
     * suppressed (a peer that died becomes a false return, not a
     * process kill). @return false on any error or short write.
     */
    bool writeLine(const std::string &line);

    /**
     * Read one '\n'-terminated line (newline stripped) within
     * @p timeout_seconds. @return false on timeout, EOF, or error;
     * @p error (optional) says which.
     */
    bool readLine(std::string *line, double timeout_seconds,
                  std::string *error = nullptr);

    void close();

  private:
    friend class TcpListener;
    explicit TcpStream(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string buf_;  ///< bytes received past the last line
};

/** A listening TCP socket (IPv4, loopback by default). */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();
    TcpListener(TcpListener &&other) noexcept;
    TcpListener &operator=(TcpListener &&other) noexcept;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind @p host:@p port and listen. @p port 0 picks an ephemeral
     * port — read it back with port() (how the smoke tests run
     * parallel daemons without coordinating port numbers).
     */
    static std::optional<TcpListener> bind(const std::string &host,
                                           int port,
                                           std::string *error);

    bool open() const { return fd_.load(std::memory_order_acquire) >= 0; }
    /** The bound port (the kernel's pick when bind() got 0). */
    int port() const { return port_; }

    /** Accept one connection; nullopt on timeout or closed listener
     *  (the accept loop polls so stop() can interrupt it). */
    std::optional<TcpStream> accept(double timeout_seconds);

    void close();

  private:
    // Atomic because stop paths close() the listener from another
    // thread while the serve loop is blocked inside accept().
    std::atomic<int> fd_{-1};
    int port_ = 0;
};

} // namespace dttsim::net
