#include "net/client.h"

#include "sim/fabricfault.h"

namespace dttsim::net {

std::optional<Endpoint>
parseEndpoint(const std::string &spec, std::string *error)
{
    auto bad = [&](const std::string &what) -> std::optional<Endpoint> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };
    // Split on the *last* colon so a future [v6]:port form has a
    // place to land; bare IPv6 addresses are not supported today.
    std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0
        || colon + 1 == spec.size())
        return bad("worker '" + spec + "' is not host:port");
    Endpoint ep;
    ep.host = spec.substr(0, colon);
    const std::string portStr = spec.substr(colon + 1);
    for (char c : portStr)
        if (c < '0' || c > '9')
            return bad("worker '" + spec + "' has a non-numeric port");
    try {
        ep.port = std::stoi(portStr);
    } catch (const std::exception &) {
        return bad("worker '" + spec + "' has an out-of-range port");
    }
    if (ep.port < 1 || ep.port > 65535)
        return bad("worker '" + spec
                   + "' port out of range (1..65535)");
    return ep;
}

std::optional<std::vector<Endpoint>>
parseEndpointList(const std::string &csv, std::string *error)
{
    std::vector<Endpoint> endpoints;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        std::string item = csv.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!item.empty()) {
            std::optional<Endpoint> ep = parseEndpoint(item, error);
            if (!ep)
                return std::nullopt;
            endpoints.push_back(std::move(*ep));
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (endpoints.empty()) {
        if (error != nullptr)
            *error = "empty worker list";
        return std::nullopt;
    }
    return endpoints;
}

std::unique_ptr<WorkerClient>
WorkerClient::connect(const Endpoint &endpoint, double timeout_seconds,
                      std::string *error)
{
    // Fabric chaos: the worker is unreachable this attempt. Drawn
    // before the real connect so the decision stream is independent
    // of actual network state.
    if (fabric::FaultPlan *fp = fabric::faultPlan();
        fp != nullptr
        && fp->inject(fabric::FaultSite::ConnectRefused)) {
        if (error != nullptr)
            *error = "connect refused (injected fabric fault)";
        return nullptr;
    }
    std::optional<TcpStream> stream = TcpStream::connect(
        endpoint.host, endpoint.port, timeout_seconds, error);
    if (!stream)
        return nullptr;
    if (!stream->writeLine(helloMessage("dttsim").dump())) {
        if (error != nullptr)
            *error = "handshake write failed";
        return nullptr;
    }
    std::string line;
    if (!stream->readLine(&line, timeout_seconds, error))
        return nullptr;
    std::optional<json::Value> v = json::Value::tryParse(line, error);
    if (!v)
        return nullptr;
    std::optional<std::string> peer =
        checkHello(*v, "hello-ok", error);
    if (!peer)
        return nullptr;
    return std::unique_ptr<WorkerClient>(
        new WorkerClient(std::move(*stream), std::move(*peer)));
}

bool
WorkerClient::sendJob(std::uint64_t id, const sim::SimJob &job,
                      const std::string &digest,
                      const RetryPolicy &policy)
{
    return stream_.writeLine(
        jobMessage(id, job, digest, policy).dump());
}

bool
WorkerClient::recvResult(WireResult *out, double timeout_seconds,
                         std::string *error)
{
    std::string line;
    if (!stream_.readLine(&line, timeout_seconds, error))
        return false;
    std::optional<json::Value> v = json::Value::tryParse(line, error);
    if (!v)
        return false;
    std::optional<WireResult> wr = tryWireResultFromJson(*v, error);
    if (!wr)
        return false;
    *out = std::move(*wr);
    return true;
}

} // namespace dttsim::net
