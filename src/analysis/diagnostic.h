#pragma once

/**
 * @file
 * Diagnostic catalogue of the static analyzer. Every check in the
 * analysis subsystem reports findings as Diagnostic records carrying a
 * stable catalogue id (A001..A008), a severity, the anchor PC and a
 * human-readable message. The catalogue (docs/ANALYSIS.md) is the
 * contract dttlint and the tests verify against.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace dttsim::analysis {

/** Stable identity of one diagnostic kind. */
enum class DiagId : std::uint8_t {
    UnreachableCode,       ///< A001: block unreachable from any root
    UseBeforeDef,          ///< A002: register may be read before def
    BadTarget,             ///< A003: control target outside the text
    DanglingTrigger,       ///< A004: DTT op on an unregistered trigger
    NonTerminatingThread,  ///< A005: thread body may not reach TRET
    RacyTriggerWrite,      ///< A006: unfenced read of handler output
    FallOffEnd,            ///< A007: execution can run off the text end
    RedundantLoad,         ///< A008: statically redundant load (lint)
    DropFallbackMissing,   ///< A009: TWAIT with no TCHK drop fallback
    DynamicRedundantLoad,  ///< A010: hot dynamic redundancy, no A008
    StaleStaticFinding,    ///< A011: A008 site never executes
    SilentStoreTriggerCandidate,  ///< A012: mostly-silent safe store

    NumDiagIds,
};

/** How bad a finding is by default. */
enum class Severity : std::uint8_t {
    Error,    ///< the program is malformed or races
    Warning,  ///< almost certainly a bug, but well-defined to simulate
    Lint,     ///< advisory (redundancy/efficiency finding)
};

/** Static catalogue properties of one diagnostic kind. */
struct DiagInfo
{
    const char *code;       ///< stable short id, e.g. "A004"
    const char *name;       ///< kebab-case name, e.g. "dangling-trigger"
    Severity severity;      ///< default severity
    const char *rationale;  ///< one-line why-this-matters
};

/** Catalogue lookup. */
const DiagInfo &diagInfo(DiagId id);

/** Anchor value for program-level findings with no single PC. */
inline constexpr std::uint64_t kNoPc = ~std::uint64_t(0);

/** One finding. */
struct Diagnostic
{
    DiagId id = DiagId::NumDiagIds;
    Severity severity = Severity::Error;
    std::uint64_t pc = kNoPc;
    std::string message;
};

/** Severity name ("error" / "warning" / "lint"). */
const char *severityName(Severity s);

/**
 * Render one finding as a single line:
 * "pc 12 (main+12): A004 error [dangling-trigger] tsd uses ...".
 * @p prog, when non-null, supplies the label annotation.
 */
std::string formatDiagnostic(const Diagnostic &d,
                             const isa::Program *prog);

/** True if any finding has Severity::Error. */
bool hasErrors(const std::vector<Diagnostic> &diags);

/** Stable ordering: by pc, then catalogue id. */
void sortDiagnostics(std::vector<Diagnostic> &diags);

/** Conventional name of dataflow register @p reg (0..31 int,
 *  32..63 fp), e.g. "x10/a0" or "f3". */
std::string dataflowRegName(int reg);

} // namespace dttsim::analysis
