#pragma once

/**
 * @file
 * Classic register dataflow over the CFG: reaching definitions and
 * live registers per basic block, for both register files (dataflow
 * register numbering: 0..31 = x0..x31, 32..63 = f0..f31).
 *
 * Reaching definitions seed every routine entry with pseudo
 * "uninitialized" definitions — except the registers the runtime
 * defines there (x0 and sp everywhere; a0/a1 at DTT thread entries,
 * which receive the trigger address and stored value) — so a use
 * reached by a pseudo definition is exactly a def-before-use
 * violation.
 *
 * Calls are not edges here (see cfg.h): each called function gets a
 * must-define summary (registers written on every path to its return)
 * applied at call sites, and a may-use summary feeding liveness. This
 * keeps caller contexts from bleeding into one another while still
 * crediting callee-produced values (the `call netcost -> read a1`
 * idiom of the workloads).
 */

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/diagnostic.h"

namespace dttsim::analysis {

/** Bitmask over the 64 dataflow registers. */
using RegMask = std::uint64_t;

/** Use/def sets of one instruction (dataflow register numbers). */
struct UseDef
{
    RegMask uses = 0;
    RegMask defs = 0;
};

/** Use/def sets of @p inst (x0 excluded: never undefined, never
 *  meaningfully live). */
UseDef useDef(const isa::Inst &inst);

/** Summary of one called function. */
struct FuncSummary
{
    std::uint64_t entryPc = 0;
    std::vector<int> body;  ///< block ids (CallSkip-reachable)
    RegMask mustDef = 0;    ///< defined on all paths to the return
    RegMask mayUse = 0;     ///< may be read before any internal def
};

/** Reaching definitions + liveness, and the diagnostics they yield. */
class Dataflow
{
  public:
    explicit Dataflow(const Cfg &cfg);

    /** Def-before-use findings (A002), one per offending (pc, reg). */
    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }

    /** Registers with a reaching uninitialized def at block entry. */
    RegMask maybeUndefIn(int block) const
    {
        return maybeUndefIn_[static_cast<std::size_t>(block)];
    }

    /** Live registers at block entry / exit. */
    RegMask liveIn(int block) const
    {
        return liveIn_[static_cast<std::size_t>(block)];
    }
    RegMask liveOut(int block) const
    {
        return liveOut_[static_cast<std::size_t>(block)];
    }

    /** Summaries of every called function, keyed by entry PC. */
    const std::map<std::uint64_t, FuncSummary> &functions() const
    {
        return funcs_;
    }

  private:
    void computeFunctions(const Cfg &cfg);
    void runReachingDefs(const Cfg &cfg);
    void runLiveness(const Cfg &cfg);

    std::map<std::uint64_t, FuncSummary> funcs_;
    std::vector<Diagnostic> diags_;
    std::vector<RegMask> maybeUndefIn_;
    std::vector<RegMask> liveIn_, liveOut_;
};

} // namespace dttsim::analysis
