#pragma once

/**
 * @file
 * Shadow-memory redundancy analyzer — the dynamic counterpart of the
 * static A008 redundant-load lint, built valgrind-style: every
 * architectural byte is mirrored by a shadow cell remembering the
 * value it held at its last committed load, its last writer PC, its
 * last reader PC, and the width of the access that touched it.
 * Classification is exact at byte granularity, so overlapping and
 * partial-width accesses (a byte store inside a previously-loaded
 * word, mixed 4/8-byte loads of the same address) are handled
 * correctly — the width-blindness of the original
 * profile::profileRedundancy map is gone.
 *
 * Definitions (docs/SHADOW.md):
 *  - a load is *redundant* when every byte it reads was previously
 *    loaded and still compares equal to the value that load returned
 *    (the paper's Fig. 2 metric, byte-exact);
 *  - a store is *silent* when every byte it writes equals the byte
 *    already present;
 *  - a store byte is *dead* when the next store overwrites it before
 *    any load reads it (attributed to the overwritten writer's PC,
 *    with a killer edge to the overwriting PC), and *dead-at-exit*
 *    when the run ends without it ever being read.
 *
 * On top of the per-PC site map, CrossChecker joins the dynamic
 * verdicts against the static verifier's A008 findings and emits the
 * A010/A011/A012 catalogue diagnostics plus an agreement report
 * (precision/recall of the static lint against dynamic ground
 * truth). Suppressions carry per-PC mute records across runs.
 */

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "common/types.h"
#include "isa/program.h"

namespace dttsim::analysis {

/** Dynamic classification of one committed load. */
enum class LoadClass : std::uint8_t { Fresh, Redundant };

/** Dynamic classification of one committed store. */
enum class StoreClass : std::uint8_t { Live, Silent };

/** Sentinel: no PC has touched this shadow cell yet. */
inline constexpr std::uint32_t kNoShadowPc = ~std::uint32_t(0);

/**
 * Per-event attribution produced alongside a load/store
 * classification: which earlier store sites sourced the bytes a load
 * read, and which earlier store sites a store killed unread. Both
 * lists are bounded by the access width (at most 8 bytes, so at most
 * 8 distinct sites) — no allocation on the hot path.
 */
struct ByteAttribution
{
    struct Edge
    {
        std::uint32_t pc = kNoShadowPc;  ///< the earlier writer site
        std::uint8_t bytes = 0;          ///< bytes attributed to it
    };

    std::array<Edge, 8> edges{};
    int count = 0;

    void
    credit(std::uint32_t pc, std::uint8_t n = 1)
    {
        for (int i = 0; i < count; ++i) {
            if (edges[static_cast<std::size_t>(i)].pc == pc) {
                edges[static_cast<std::size_t>(i)].bytes =
                    static_cast<std::uint8_t>(
                        edges[static_cast<std::size_t>(i)].bytes + n);
                return;
            }
        }
        edges[static_cast<std::size_t>(count++)] = {pc, n};
    }

    void clear() { count = 0; }
};

/**
 * Paged shadow state mirroring the architectural memory, with the
 * same page geometry as mem::Memory and the same lazy allocation
 * policy: a shadow page materializes the first time a classified
 * access touches it, through a one-entry last-page cache backed by a
 * flat open-addressed index (Fibonacci hash, linear probing).
 *
 * The analyzer holds no global or thread-local state — every
 * instance is independent, so concurrent profiling runs (one
 * ShadowMemory per job) are deterministic at any thread count.
 */
class ShadowMemory
{
  public:
    static constexpr std::uint64_t kPageBits = 12;
    static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

    /** One mirrored architectural byte (12 bytes of shadow). */
    struct Cell
    {
        std::uint8_t loadValue = 0;  ///< byte value at the last load
        std::uint8_t flags = 0;      ///< kLoadValid | kWritten | ...
        std::uint8_t lastWidth = 0;  ///< width of the last access
        std::uint32_t writerPc = kNoShadowPc;
        std::uint32_t readerPc = kNoShadowPc;
    };

    static constexpr std::uint8_t kLoadValid = 1u << 0;
    static constexpr std::uint8_t kWritten = 1u << 1;
    static constexpr std::uint8_t kReadSinceWrite = 1u << 2;

    ShadowMemory();
    ShadowMemory(const ShadowMemory &) = delete;
    ShadowMemory &operator=(const ShadowMemory &) = delete;

    /**
     * Classify a committed load of @p size bytes at @p addr that
     * returned @p value (little-endian byte order, as the executor
     * reports it). Store sites whose bytes the load consumed are
     * credited through @p sourced (pass null to skip attribution).
     */
    LoadClass load(std::uint64_t pc, Addr addr, int size,
                   std::uint64_t value,
                   ByteAttribution *sourced = nullptr);

    /**
     * Classify a committed store of @p size bytes at @p addr writing
     * @p value over @p old_value. Writer sites whose bytes this store
     * overwrote before any load read them are reported through
     * @p killed (pass null to skip attribution).
     */
    StoreClass store(std::uint64_t pc, Addr addr, int size,
                     std::uint64_t value, std::uint64_t old_value,
                     ByteAttribution *killed = nullptr);

    /**
     * End-of-run sweep: report every byte still written-but-unread as
     * dead-at-exit, attributed to its writer site via @p callback
     * (writer pc, byte count; PC-ordered for determinism).
     * Idempotent — the swept bytes are marked read.
     */
    template <typename Fn>
    void
    finalizeDead(Fn &&callback)
    {
        std::map<std::uint32_t, std::uint64_t> dead;
        for (auto &page : pages_) {
            for (Cell &c : *page) {
                if ((c.flags & kWritten) != 0
                    && (c.flags & kReadSinceWrite) == 0) {
                    ++dead[c.writerPc];
                    c.flags |= kReadSinceWrite;
                }
            }
        }
        for (const auto &[pc, bytes] : dead)
            callback(pc, bytes);
    }

    /** Shadow pages currently materialized. */
    std::size_t pagesAllocated() const { return pages_.size(); }

    /** Direct cell inspection (tests). The cell is materialized. */
    const Cell &cellAt(Addr a) { return pageFor(a)[a & (kPageSize - 1)]; }

  private:
    using Page = std::array<Cell, kPageSize>;

    struct Slot
    {
        std::uint64_t pageNum = 0;
        Cell *cells = nullptr;
    };

    Cell *
    pageFor(Addr a)
    {
        std::uint64_t pn = a >> kPageBits;
        if (pn == lastPage_)
            return lastCells_;
        return lookupPage(pn);
    }

    Cell *lookupPage(std::uint64_t pn);
    Cell *allocatePage(std::uint64_t pn);
    void grow();

    static std::size_t
    hashPage(std::uint64_t pn, std::size_t mask)
    {
        return static_cast<std::size_t>(
                   (pn * 0x9e3779b97f4a7c15ull) >> 40) & mask;
    }

    std::vector<std::unique_ptr<Page>> pages_;
    std::vector<Slot> index_;
    std::size_t indexMask_ = 0;
    std::uint64_t lastPage_ = ~0ull;
    Cell *lastCells_ = nullptr;
};

/** Number of log2 buckets in the per-site value-locality histogram. */
inline constexpr int kValueRunBuckets = 8;

/**
 * Dynamic behaviour of one static load or store site (keyed by PC).
 * Counts are event-granular where the event is unambiguous
 * (executions, redundant, silent) and byte-granular where a single
 * event can split across sites (dead bytes, killer edges, downstream
 * reads) — see docs/SHADOW.md.
 */
struct RedundancySite
{
    std::uint64_t pc = 0;
    bool isLoad = false;
    std::uint8_t width = 0;  ///< widest access committed at this site

    std::uint64_t executions = 0;
    std::uint64_t redundant = 0;  ///< loads: redundant executions
    std::uint64_t silent = 0;     ///< stores: silent executions

    /** Stores only: bytes this site wrote that a later store killed
     *  unread, and bytes never read by the end of the run. */
    std::uint64_t deadBytes = 0;
    std::uint64_t deadAtExitBytes = 0;
    /** Stores only: bytes this site wrote that later loads consumed
     *  (the downstream-read mass the trigger advisor scores on). */
    std::uint64_t downstreamReadBytes = 0;

    /**
     * Value-locality histogram: completed runs of identical access
     * values at this site, bucketed by log2(run length) (bucket k
     * holds runs of 2^k .. 2^(k+1)-1 accesses; the last bucket is
     * open-ended). Long runs mean the site's value rarely changes —
     * exactly the locality a data-triggered thread exploits.
     */
    std::array<std::uint64_t, kValueRunBuckets> valueRuns{};

    /** Stores only: killer edges — overwriting PC -> bytes of this
     *  site's output it killed unread. */
    std::map<std::uint64_t, std::uint64_t> killers;

    double
    redundantFrac() const
    {
        return executions != 0
            ? static_cast<double>(redundant)
                / static_cast<double>(executions)
            : 0.0;
    }

    double
    silentFrac() const
    {
        return executions != 0
            ? static_cast<double>(silent)
                / static_cast<double>(executions)
            : 0.0;
    }

    bool operator==(const RedundancySite &) const = default;
};

/** Histogram bucket for a completed same-value run of @p len >= 1
 *  accesses: floor(log2(len)), clamped to the open-ended last
 *  bucket. */
int valueRunBucket(std::uint64_t len);

/**
 * Transient per-site state feeding RedundancySite::valueRuns: call
 * note() with each committed access value and flush() at end of run
 * to close the final run. Kept outside RedundancySite so reports
 * stay pure value types that compare with ==.
 */
struct ValueRunTracker
{
    std::uint64_t lastValue = 0;
    std::uint64_t runLength = 0;

    void
    note(RedundancySite &site, std::uint64_t value)
    {
        if (runLength != 0 && value == lastValue) {
            ++runLength;
            return;
        }
        flush(site);
        lastValue = value;
        runLength = 1;
    }

    void
    flush(RedundancySite &site)
    {
        if (runLength == 0)
            return;
        ++site.valueRuns[static_cast<std::size_t>(
            valueRunBucket(runLength))];
        runLength = 0;
    }
};

/** Whole-run shadow profile: totals plus the per-PC site map. */
struct ShadowReport
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t redundantLoads = 0;
    std::uint64_t stores = 0;
    std::uint64_t silentStores = 0;
    std::uint64_t deadStoreBytes = 0;
    std::uint64_t deadAtExitBytes = 0;

    /** Per-PC records, PC-ordered (deterministic iteration). */
    std::map<std::uint64_t, RedundancySite> sites;

    double redundantLoadPct() const;
    double silentStorePct() const;

    bool operator==(const ShadowReport &) const = default;
};

/**
 * Per-PC suppression records, valgrind-style: known-benign sites a
 * cross-check run should keep quiet about. The text format is one
 * record per line — `CODE:PROGRAM:PC` (e.g. `A012:mcf (baseline):41`)
 * with `*` matching any program, blank lines and `#` comments
 * ignored — and round-trips through parse()/format().
 */
class Suppressions
{
  public:
    /** Parse the text format; malformed lines raise FatalError with
     *  the 1-based line number. */
    static Suppressions parse(const std::string &text);

    /** Serialize in parse()able form (records sorted, stable). */
    std::string format() const;

    void add(const std::string &code, const std::string &program,
             std::uint64_t pc);

    /** True when a record mutes diagnostic @p code at @p pc in
     *  @p program (exact program match or a `*` record). */
    bool matches(const std::string &code, const std::string &program,
                 std::uint64_t pc) const;

    std::size_t size() const { return records_.size(); }
    bool operator==(const Suppressions &) const = default;

  private:
    /** (code, program, pc) */
    std::set<std::tuple<std::string, std::string, std::uint64_t>>
        records_;
};

/** Thresholds for the static/dynamic join. */
struct CrossCheckConfig
{
    /** Sites executing fewer times are ignored as noise (A010/A012
     *  hotness floor, mirroring the advisor's filter). */
    std::uint64_t minExecutions = 16;
    /** A load site is dynamic ground truth when at least this
     *  fraction of its executions were redundant. */
    double redundantFrac = 0.5;
    /** A store site is an A012 candidate when at least this fraction
     *  of its executions were silent. */
    double silentFrac = 0.5;
};

/** The static-vs-dynamic agreement summary for one program. */
struct AgreementReport
{
    std::uint64_t staticSites = 0;   ///< A008 findings
    std::uint64_t dynamicSites = 0;  ///< hot dynamically-redundant loads
    std::uint64_t agree = 0;         ///< flagged by both
    std::uint64_t staticOnly = 0;    ///< A008 not confirmed dynamically
    std::uint64_t staticNeverExecuted = 0;  ///< subset of staticOnly
    std::uint64_t dynamicOnly = 0;   ///< dynamic sites the lint missed
    std::uint64_t triggerCandidates = 0;    ///< A012 sites
    std::uint64_t suppressed = 0;    ///< findings muted by records

    /** Of the static lint's claims, the fraction dynamically
     *  confirmed (1.0 when it made none). */
    double precision() const;
    /** Of the dynamically-redundant hot sites, the fraction the
     *  static lint found (1.0 when there were none). */
    double recall() const;

    bool operator==(const AgreementReport &) const = default;
};

/**
 * The cross-validation pass: join a dynamic ShadowReport against the
 * static verifier's findings for the same program and emit the
 * A010/A011/A012 catalogue diagnostics (appended to @p out in stable
 * order) plus the agreement report. @p program_name keys the
 * suppression lookup.
 */
class CrossChecker
{
  public:
    explicit CrossChecker(const CrossCheckConfig &config = {})
        : config_(config)
    {
    }

    AgreementReport run(const AnalysisResult &statics,
                        const ShadowReport &dynamic,
                        const Suppressions &suppressions,
                        const std::string &program_name,
                        std::vector<Diagnostic> &out) const;

  private:
    CrossCheckConfig config_;
};

} // namespace dttsim::analysis
