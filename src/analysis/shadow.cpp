#include "analysis/shadow.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"

namespace dttsim::analysis {

// --------------------------------------------------------------------
// ShadowMemory

ShadowMemory::ShadowMemory()
{
    index_.resize(64);
    indexMask_ = index_.size() - 1;
}

ShadowMemory::Cell *
ShadowMemory::lookupPage(std::uint64_t pn)
{
    std::size_t i = hashPage(pn, indexMask_);
    while (index_[i].cells != nullptr) {
        if (index_[i].pageNum == pn) {
            lastPage_ = pn;
            lastCells_ = index_[i].cells;
            return lastCells_;
        }
        i = (i + 1) & indexMask_;
    }
    return allocatePage(pn);
}

ShadowMemory::Cell *
ShadowMemory::allocatePage(std::uint64_t pn)
{
    if (pages_.size() + 1 > (index_.size() * 7) / 10)
        grow();
    pages_.push_back(std::make_unique<Page>());
    Cell *cells = pages_.back()->data();

    std::size_t i = hashPage(pn, indexMask_);
    while (index_[i].cells != nullptr)
        i = (i + 1) & indexMask_;
    index_[i] = {pn, cells};

    lastPage_ = pn;
    lastCells_ = cells;
    return cells;
}

void
ShadowMemory::grow()
{
    std::vector<Slot> old = std::move(index_);
    index_.assign(old.size() * 2, Slot{});
    indexMask_ = index_.size() - 1;
    for (const Slot &s : old) {
        if (s.cells == nullptr)
            continue;
        std::size_t i = hashPage(s.pageNum, indexMask_);
        while (index_[i].cells != nullptr)
            i = (i + 1) & indexMask_;
        index_[i] = s;
    }
}

LoadClass
ShadowMemory::load(std::uint64_t pc, Addr addr, int size,
                   std::uint64_t value, ByteAttribution *sourced)
{
    const auto pc32 = static_cast<std::uint32_t>(pc);
    bool redundant = true;
    for (int i = 0; i < size; ++i) {
        const Addr a = addr + static_cast<Addr>(i);
        Cell &c = pageFor(a)[a & (kPageSize - 1)];
        const auto b = static_cast<std::uint8_t>(value >> (8 * i));
        if ((c.flags & kLoadValid) == 0 || c.loadValue != b)
            redundant = false;
        c.loadValue = b;
        c.flags |= kLoadValid;
        if ((c.flags & kWritten) != 0) {
            if (sourced != nullptr)
                sourced->credit(c.writerPc);
            c.flags |= kReadSinceWrite;
        }
        c.lastWidth = static_cast<std::uint8_t>(size);
        c.readerPc = pc32;
    }
    return redundant ? LoadClass::Redundant : LoadClass::Fresh;
}

StoreClass
ShadowMemory::store(std::uint64_t pc, Addr addr, int size,
                    std::uint64_t value, std::uint64_t old_value,
                    ByteAttribution *killed)
{
    const auto pc32 = static_cast<std::uint32_t>(pc);
    bool silent = true;
    for (int i = 0; i < size; ++i) {
        const Addr a = addr + static_cast<Addr>(i);
        Cell &c = pageFor(a)[a & (kPageSize - 1)];
        const auto nv = static_cast<std::uint8_t>(value >> (8 * i));
        const auto ov = static_cast<std::uint8_t>(old_value >> (8 * i));
        if (nv != ov)
            silent = false;
        if ((c.flags & kWritten) != 0
            && (c.flags & kReadSinceWrite) == 0 && killed != nullptr)
            killed->credit(c.writerPc);
        // Note: loadValue/kLoadValid are deliberately untouched — a
        // load is redundant relative to the *previous load* of the
        // byte; an intervening store shows up through the value
        // comparison (a silent store preserves redundancy, a
        // value-changing one breaks it).
        c.writerPc = pc32;
        c.flags |= kWritten;
        c.flags = static_cast<std::uint8_t>(c.flags & ~kReadSinceWrite);
        c.lastWidth = static_cast<std::uint8_t>(size);
    }
    return silent ? StoreClass::Silent : StoreClass::Live;
}

// --------------------------------------------------------------------
// Reports

int
valueRunBucket(std::uint64_t len)
{
    int b = 0;
    while (len > 1 && b < kValueRunBuckets - 1) {
        len >>= 1;
        ++b;
    }
    return b;
}

double
ShadowReport::redundantLoadPct() const
{
    return loads != 0 ? 100.0 * static_cast<double>(redundantLoads)
            / static_cast<double>(loads)
                      : 0.0;
}

double
ShadowReport::silentStorePct() const
{
    return stores != 0 ? 100.0 * static_cast<double>(silentStores)
            / static_cast<double>(stores)
                       : 0.0;
}

double
AgreementReport::precision() const
{
    return staticSites != 0
        ? static_cast<double>(agree) / static_cast<double>(staticSites)
        : 1.0;
}

double
AgreementReport::recall() const
{
    return dynamicSites != 0
        ? static_cast<double>(agree)
            / static_cast<double>(dynamicSites)
        : 1.0;
}

// --------------------------------------------------------------------
// Suppressions

Suppressions
Suppressions::parse(const std::string &text)
{
    Suppressions s;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments and surrounding whitespace.
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        std::size_t e = line.find_last_not_of(" \t\r");
        line = line.substr(b, e - b + 1);

        std::size_t c1 = line.find(':');
        std::size_t c2 = line.rfind(':');
        if (c1 == std::string::npos || c2 == c1)
            fatal("suppressions line %d: want CODE:PROGRAM:PC, got "
                  "'%s'", lineno, line.c_str());
        std::string code = line.substr(0, c1);
        std::string program = line.substr(c1 + 1, c2 - c1 - 1);
        std::string pcText = line.substr(c2 + 1);
        if (code.empty() || program.empty() || pcText.empty())
            fatal("suppressions line %d: empty field in '%s'", lineno,
                  line.c_str());
        std::uint64_t pc = 0;
        for (char ch : pcText) {
            if (ch < '0' || ch > '9')
                fatal("suppressions line %d: pc '%s' is not a "
                      "decimal integer", lineno, pcText.c_str());
            pc = pc * 10 + static_cast<std::uint64_t>(ch - '0');
        }
        s.add(code, program, pc);
    }
    return s;
}

std::string
Suppressions::format() const
{
    std::ostringstream os;
    for (const auto &[code, program, pc] : records_)
        os << code << ":" << program << ":" << pc << "\n";
    return os.str();
}

void
Suppressions::add(const std::string &code, const std::string &program,
                  std::uint64_t pc)
{
    records_.emplace(code, program, pc);
}

bool
Suppressions::matches(const std::string &code,
                      const std::string &program,
                      std::uint64_t pc) const
{
    return records_.count({code, program, pc}) != 0
        || records_.count({code, "*", pc}) != 0;
}

// --------------------------------------------------------------------
// CrossChecker

AgreementReport
CrossChecker::run(const AnalysisResult &statics,
                  const ShadowReport &dynamic,
                  const Suppressions &suppressions,
                  const std::string &program_name,
                  std::vector<Diagnostic> &out) const
{
    AgreementReport agg;

    // The static lint's claims: A008 anchor PCs.
    std::set<std::uint64_t> staticPcs;
    for (const Diagnostic &d : statics.diagnostics)
        if (d.id == DiagId::RedundantLoad && d.pc != kNoPc)
            staticPcs.insert(d.pc);
    agg.staticSites = staticPcs.size();

    auto emit = [&](DiagId id, std::uint64_t pc,
                    const std::string &msg) {
        const std::string code = diagInfo(id).code;
        if (suppressions.matches(code, program_name, pc)) {
            ++agg.suppressed;
            return;
        }
        out.push_back({id, diagInfo(id).severity, pc, msg});
    };

    // Dynamic ground truth: hot load sites that are mostly redundant.
    for (const auto &[pc, site] : dynamic.sites) {
        if (site.isLoad) {
            if (site.executions < config_.minExecutions
                || site.redundantFrac() < config_.redundantFrac)
                continue;
            ++agg.dynamicSites;
            if (staticPcs.count(pc) != 0) {
                ++agg.agree;
            } else {
                ++agg.dynamicOnly;
                emit(DiagId::DynamicRedundantLoad, pc,
                     strfmt("load is %llu/%llu redundant at run time "
                            "but carries no A008 finding (cross-block "
                            "or data-dependent redundancy the static "
                            "lint cannot see)",
                            static_cast<unsigned long long>(
                                site.redundant),
                            static_cast<unsigned long long>(
                                site.executions)));
            }
        } else {
            if (site.executions < config_.minExecutions
                || site.silentFrac() < config_.silentFrac
                || !statics.storeSafe(pc))
                continue;
            ++agg.triggerCandidates;
            emit(DiagId::SilentStoreTriggerCandidate, pc,
                 strfmt("store is %llu/%llu silent and statically "
                        "safe to convert: a prime triggering-store "
                        "candidate (%llu bytes read downstream)",
                        static_cast<unsigned long long>(site.silent),
                        static_cast<unsigned long long>(
                            site.executions),
                        static_cast<unsigned long long>(
                            site.downstreamReadBytes)));
        }
    }

    // The static lint's misses and stale claims.
    for (std::uint64_t pc : staticPcs) {
        auto it = dynamic.sites.find(pc);
        const bool executed =
            it != dynamic.sites.end() && it->second.executions != 0;
        const bool confirmed = executed && it->second.isLoad
            && it->second.executions >= config_.minExecutions
            && it->second.redundantFrac() >= config_.redundantFrac;
        if (confirmed)
            continue;
        ++agg.staticOnly;
        if (!executed) {
            ++agg.staticNeverExecuted;
            emit(DiagId::StaleStaticFinding, pc,
                 "A008 redundant-load finding anchors an instruction "
                 "that never commits dynamically (dead path or "
                 "unreached input regime) — the static claim is "
                 "unverifiable on this run");
        }
    }

    sortDiagnostics(out);
    return agg;
}

} // namespace dttsim::analysis
