#include "analysis/dataflow.h"

#include <algorithm>
#include <deque>

#include "isa/opcodes.h"

namespace dttsim::analysis {

namespace {

using isa::Format;
using isa::Inst;
using isa::Opcode;

constexpr int kNumRegs = 64;
constexpr RegMask kAllRegs = ~RegMask(0);

RegMask
bit(int reg)
{
    return RegMask(1) << reg;
}

RegMask
intReg(int r)
{
    return r == 0 ? 0 : bit(r);  // x0 is never undefined nor live
}

RegMask
fpReg(int r)
{
    return bit(32 + r);
}

/** Registers defined by the runtime at each kind of routine entry:
 *  x0 and sp everywhere; a DTT thread additionally gets the trigger
 *  address in a0 and the stored value in a1. */
constexpr RegMask kMainEntryDefined = RegMask(1) << 0 | RegMask(1) << 2;
constexpr RegMask kThreadEntryDefined =
    kMainEntryDefined | RegMask(1) << 10 | RegMask(1) << 11;

/** Dense bitvector over definition sites. */
class BitVec
{
  public:
    void resize(std::size_t bits)
    {
        words_.assign((bits + 63) / 64, 0);
    }
    void set(std::size_t i) { words_[i / 64] |= RegMask(1) << (i % 64); }
    bool
    test(std::size_t i) const
    {
        return (words_[i / 64] >> (i % 64)) & 1;
    }
    bool
    orWith(const BitVec &o)  ///< returns true when bits changed
    {
        bool changed = false;
        for (std::size_t w = 0; w < words_.size(); ++w) {
            RegMask merged = words_[w] | o.words_[w];
            changed |= merged != words_[w];
            words_[w] = merged;
        }
        return changed;
    }
    void
    andNot(const BitVec &o)
    {
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] &= ~o.words_[w];
    }

  private:
    std::vector<RegMask> words_;
};

} // namespace

UseDef
useDef(const Inst &inst)
{
    UseDef ud;
    switch (isa::opInfo(inst.op).format) {
      case Format::R:
        ud.uses = intReg(inst.rs1) | intReg(inst.rs2);
        ud.defs = intReg(inst.rd);
        break;
      case Format::I:
        ud.uses = intReg(inst.rs1);
        ud.defs = intReg(inst.rd);
        break;
      case Format::LI:
        ud.defs = intReg(inst.rd);
        break;
      case Format::FLI:
        ud.defs = fpReg(inst.rd);
        break;
      case Format::Load:
        ud.uses = intReg(inst.rs1);
        ud.defs = inst.op == Opcode::FLD ? fpReg(inst.rd)
                                         : intReg(inst.rd);
        break;
      case Format::Store:
        ud.uses = intReg(inst.rs1)
            | (inst.op == Opcode::FSD ? fpReg(inst.rs2)
                                      : intReg(inst.rs2));
        break;
      case Format::TStore:
        ud.uses = intReg(inst.rs1) | intReg(inst.rs2);
        break;
      case Format::Branch:
        ud.uses = intReg(inst.rs1) | intReg(inst.rs2);
        break;
      case Format::Jump:
        ud.defs = intReg(inst.rd);
        break;
      case Format::JumpR:
        ud.uses = intReg(inst.rs1);
        ud.defs = intReg(inst.rd);
        break;
      case Format::FR:
        ud.uses = fpReg(inst.rs1) | fpReg(inst.rs2);
        ud.defs = fpReg(inst.rd);
        break;
      case Format::FR1:
        ud.uses = fpReg(inst.rs1);
        ud.defs = fpReg(inst.rd);
        break;
      case Format::FCvtFI:  // fd <- (double) rs1
        ud.uses = intReg(inst.rs1);
        ud.defs = fpReg(inst.rd);
        break;
      case Format::FCvtIF:  // rd <- (int64) fs1
        ud.uses = fpReg(inst.rs1);
        ud.defs = intReg(inst.rd);
        break;
      case Format::FCmp:
        ud.uses = fpReg(inst.rs1) | fpReg(inst.rs2);
        ud.defs = intReg(inst.rd);
        break;
      case Format::TChk:
        ud.defs = intReg(inst.rd);
        break;
      case Format::TReg:
      case Format::Trig:
      case Format::None:
        break;
    }
    return ud;
}

Dataflow::Dataflow(const Cfg &cfg)
{
    const std::size_t nblocks = cfg.blocks().size();
    maybeUndefIn_.assign(nblocks, 0);
    liveIn_.assign(nblocks, 0);
    liveOut_.assign(nblocks, 0);
    if (nblocks == 0)
        return;
    computeFunctions(cfg);
    runReachingDefs(cfg);
    runLiveness(cfg);
}

namespace {

/** Summary lookup for the Call-exit of @p b (zeroes when the call
 *  target is unresolvable). */
void
callSummary(const Cfg &cfg, const BasicBlock &b,
            const std::map<std::uint64_t, FuncSummary> &funcs,
            RegMask &mustDef, RegMask &mayUse)
{
    mustDef = 0;
    mayUse = 0;
    if (b.exit != BlockExit::Call || b.succTarget < 0)
        return;
    std::uint64_t entry =
        cfg.blocks()[static_cast<std::size_t>(b.succTarget)].first;
    auto it = funcs.find(entry);
    if (it != funcs.end()) {
        mustDef = it->second.mustDef;
        mayUse = it->second.mayUse;
    }
}

/** Intraprocedural must-defined/may-use analysis of one routine body
 *  (used both to build function summaries and by their fixpoint). */
void
analyzeBody(const Cfg &cfg, const std::vector<int> &body, int entry,
            RegMask entryDefined,
            const std::map<std::uint64_t, FuncSummary> &funcs,
            RegMask &mustDefOut, RegMask &mayUseOut)
{
    const auto &text = cfg.program().text();
    const std::size_t nblocks = cfg.blocks().size();
    std::vector<bool> inBody(nblocks, false);
    for (int b : body)
        inBody[static_cast<std::size_t>(b)] = true;

    // Forward fixpoint; merge is intersection, so non-entry blocks
    // start at top (all-defined) and only ever lose bits.
    std::vector<RegMask> in(nblocks, kAllRegs), out(nblocks, kAllRegs);
    auto transferBlock = [&](int bi) {
        const BasicBlock &b =
            cfg.blocks()[static_cast<std::size_t>(bi)];
        RegMask defined = in[static_cast<std::size_t>(bi)];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc)
            defined |= useDef(text[pc]).defs;
        RegMask calleeMust = 0, calleeMay = 0;
        callSummary(cfg, b, funcs, calleeMust, calleeMay);
        return defined | calleeMust;
    };

    in[static_cast<std::size_t>(entry)] = entryDefined;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int bi : body) {
            auto i = static_cast<std::size_t>(bi);
            RegMask merged = bi == entry ? entryDefined : kAllRegs;
            bool hasPred = bi == entry;
            // Predecessor scan (bodies are small; O(n^2) is fine).
            for (int pi : body) {
                auto succs = cfg.successors(pi, EdgeView::CallSkip);
                if (std::find(succs.begin(), succs.end(), bi)
                    != succs.end()) {
                    merged &= out[static_cast<std::size_t>(pi)];
                    hasPred = true;
                }
            }
            if (!hasPred)
                merged = kAllRegs;
            in[i] = merged;
            RegMask newOut = transferBlock(bi);
            if (newOut != out[i]) {
                out[i] = newOut;
                changed = true;
            }
        }
    }

    // May-use: walk each block once with its converged must-defined-in.
    RegMask mayUse = 0;
    for (int bi : body) {
        const BasicBlock &b =
            cfg.blocks()[static_cast<std::size_t>(bi)];
        RegMask defined = in[static_cast<std::size_t>(bi)];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc) {
            UseDef ud = useDef(text[pc]);
            mayUse |= ud.uses & ~defined;
            defined |= ud.defs;
        }
        RegMask calleeMust = 0, calleeMay = 0;
        callSummary(cfg, b, funcs, calleeMust, calleeMay);
        mayUse |= calleeMay & ~defined;
    }

    // The routine's guarantee is the intersection over its returns.
    RegMask mustDef = kAllRegs;
    bool sawReturn = false;
    for (int bi : body) {
        const BasicBlock &b =
            cfg.blocks()[static_cast<std::size_t>(bi)];
        if (b.exit == BlockExit::Return || b.exit == BlockExit::Tret) {
            mustDef &= out[static_cast<std::size_t>(bi)];
            sawReturn = true;
        }
    }
    if (!sawReturn)
        mustDef = kAllRegs;  // never returns; guarantee is vacuous
    mustDefOut = mustDef;
    mayUseOut = mayUse;
}

} // namespace

void
Dataflow::computeFunctions(const Cfg &cfg)
{
    for (std::uint64_t entry : cfg.calleeEntries()) {
        int eb = cfg.blockOf(entry);
        if (eb < 0 || cfg.blocks()[static_cast<std::size_t>(eb)].first
            != entry)
            continue;  // call into the middle of a block: no summary
        FuncSummary fs;
        fs.entryPc = entry;
        auto seen = cfg.reachable({eb}, EdgeView::CallSkip);
        for (std::size_t b = 0; b < seen.size(); ++b)
            if (seen[b])
                fs.body.push_back(static_cast<int>(b));
        // Optimistic start: the summary fixpoint below only shrinks
        // mustDef / grows mayUse, so cycles (recursion) converge.
        fs.mustDef = kAllRegs;
        fs.mayUse = 0;
        funcs_.emplace(entry, fs);
    }

    for (int iter = 0; iter < 100; ++iter) {
        bool changed = false;
        for (auto &[entry, fs] : funcs_) {
            RegMask mustDef = 0, mayUse = 0;
            // entryDefined = 0: the summary captures what the routine
            // itself guarantees to define / may consume.
            analyzeBody(cfg, fs.body, cfg.blockOf(entry), 0, funcs_,
                        mustDef, mayUse);
            if (fs.mustDef != mustDef || fs.mayUse != mayUse) {
                fs.mustDef = mustDef;
                fs.mayUse = mayUse;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
}

void
Dataflow::runReachingDefs(const Cfg &cfg)
{
    const auto &text = cfg.program().text();
    const std::size_t nblocks = cfg.blocks().size();

    // ---- definition sites -------------------------------------------
    // Sites 0..63 are the pseudo "uninitialized at routine entry"
    // definitions, one per dataflow register; real definitions (and
    // synthetic callee-summary definitions at call sites) follow.
    struct Site
    {
        std::uint64_t pc;
        int reg;
    };
    std::vector<Site> sites;
    for (int r = 0; r < kNumRegs; ++r)
        sites.push_back(Site{kNoPc, r});
    std::vector<std::vector<std::size_t>> sitesAtPc(text.size());
    auto addSite = [&](std::uint64_t pc, RegMask defs) {
        for (int r = 0; r < kNumRegs; ++r)
            if (defs & bit(r)) {
                sitesAtPc[pc].push_back(sites.size());
                sites.push_back(Site{pc, r});
            }
    };
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
        const BasicBlock &b = cfg.blocks()[bi];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc)
            addSite(pc, useDef(text[pc]).defs);
        RegMask calleeMust = 0, calleeMay = 0;
        callSummary(cfg, b, funcs_, calleeMust, calleeMay);
        if (calleeMust)
            addSite(b.last, calleeMust & ~useDef(text[b.last]).defs);
    }
    const std::size_t nsites = sites.size();

    std::vector<BitVec> defsOfReg(kNumRegs);
    for (auto &v : defsOfReg)
        v.resize(nsites);
    for (std::size_t s = 0; s < nsites; ++s)
        defsOfReg[static_cast<std::size_t>(sites[s].reg)].set(s);

    // ---- block IN sets, union merge over CallSkip edges -------------
    std::vector<BitVec> in(nblocks);
    for (auto &v : in)
        v.resize(nsites);
    std::vector<bool> reached(nblocks, false);

    std::deque<int> work;
    std::vector<bool> queued(nblocks, false);
    auto push = [&](int b) {
        if (!queued[static_cast<std::size_t>(b)]) {
            queued[static_cast<std::size_t>(b)] = true;
            work.push_back(b);
        }
    };
    auto seedRoot = [&](int b, RegMask entryDefined) {
        if (b < 0)
            return;
        auto i = static_cast<std::size_t>(b);
        for (int r = 0; r < kNumRegs; ++r)
            if (!(entryDefined & bit(r)))
                in[i].set(static_cast<std::size_t>(r));
        reached[i] = true;
        push(b);
    };
    seedRoot(cfg.entryBlock(), kMainEntryDefined);
    for (const auto &[trig, pc] : cfg.handlerEntries()) {
        (void)trig;
        seedRoot(cfg.blockOf(pc), kThreadEntryDefined);
    }
    for (std::uint64_t pc : cfg.calleeEntries())
        seedRoot(cfg.blockOf(pc), kAllRegs);

    // One pc's transfer: every site at this pc (instruction def or
    // callee-summary def) kills all other defs of its register, then
    // becomes reaching itself.
    auto applyPc = [&](std::uint64_t pc, BitVec &r) {
        for (std::size_t s : sitesAtPc[pc])
            r.andNot(defsOfReg[static_cast<std::size_t>(sites[s].reg)]);
        for (std::size_t s : sitesAtPc[pc])
            r.set(s);
    };
    auto applyBlock = [&](int bi, BitVec &r) {
        const BasicBlock &b =
            cfg.blocks()[static_cast<std::size_t>(bi)];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc)
            applyPc(pc, r);
    };

    while (!work.empty()) {
        int bi = work.front();
        work.pop_front();
        auto i = static_cast<std::size_t>(bi);
        queued[i] = false;
        BitVec out = in[i];
        applyBlock(bi, out);
        for (int s : cfg.successors(bi, EdgeView::CallSkip)) {
            auto si = static_cast<std::size_t>(s);
            bool changed = in[si].orWith(out) || !reached[si];
            reached[si] = true;
            if (changed)
                push(s);
        }
    }

    // ---- expose the per-block maybe-undefined mask ------------------
    for (std::size_t b = 0; b < nblocks; ++b) {
        if (!reached[b])
            continue;
        for (int r = 0; r < kNumRegs; ++r)
            if (in[b].test(static_cast<std::size_t>(r)))
                maybeUndefIn_[b] |= bit(r);
    }

    // ---- def-before-use diagnostics ---------------------------------
    const DiagInfo &info = diagInfo(DiagId::UseBeforeDef);
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
        if (!reached[bi])
            continue;
        const BasicBlock &b = cfg.blocks()[bi];
        BitVec r = in[bi];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc) {
            UseDef ud = useDef(text[pc]);
            for (int reg = 0; reg < kNumRegs; ++reg) {
                if ((ud.uses & bit(reg))
                    && r.test(static_cast<std::size_t>(reg))) {
                    Diagnostic d;
                    d.id = DiagId::UseBeforeDef;
                    d.severity = info.severity;
                    d.pc = pc;
                    d.message = "register " + dataflowRegName(reg)
                        + " may be read by " + isa::mnemonic(text[pc].op)
                        + " before any definition reaches it";
                    diags_.push_back(d);
                }
            }
            applyPc(pc, r);
        }
    }
}

void
Dataflow::runLiveness(const Cfg &cfg)
{
    const auto &text = cfg.program().text();
    const std::size_t nblocks = cfg.blocks().size();

    // Per-block use (read before any local def) and def masks, with
    // callee summaries folded into Call blocks.
    std::vector<RegMask> use(nblocks, 0), def(nblocks, 0);
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
        const BasicBlock &b = cfg.blocks()[bi];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc) {
            UseDef ud = useDef(text[pc]);
            use[bi] |= ud.uses & ~def[bi];
            def[bi] |= ud.defs;
        }
        RegMask calleeMust = 0, calleeMay = 0;
        callSummary(cfg, b, funcs_, calleeMust, calleeMay);
        use[bi] |= calleeMay & ~def[bi];
        def[bi] |= calleeMust;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t bi = nblocks; bi-- > 0;) {
            RegMask out = 0;
            for (int s : cfg.successors(static_cast<int>(bi),
                                        EdgeView::CallSkip))
                out |= liveIn_[static_cast<std::size_t>(s)];
            RegMask inMask = use[bi] | (out & ~def[bi]);
            if (out != liveOut_[bi] || inMask != liveIn_[bi]) {
                liveOut_[bi] = out;
                liveIn_[bi] = inMask;
                changed = true;
            }
        }
    }
}

} // namespace dttsim::analysis
