#pragma once

/**
 * @file
 * Static resolution of memory-access addresses to data-segment chunks.
 *
 * Builder/assembler programs form addresses the same way: a data
 * symbol's base address appears as an instruction immediate (li/la or
 * the addi of a scaled index) and the rest of the address is a runtime
 * index. A light abstract interpretation over the integer register
 * file — values are Const(k), Chunk(data object) or Unknown — is
 * therefore enough to attribute most loads and stores to the data
 * object they touch, which powers the DTT race check and sharpens the
 * redundant-load lint.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "common/types.h"

namespace dttsim::analysis {

/** The data segment as a table of named, disjoint address ranges. */
class ChunkTable
{
  public:
    struct Chunk
    {
        std::string name;
        Addr base = 0;
        Addr end = 0;  ///< one past the last byte
    };

    explicit ChunkTable(const isa::Program &prog);

    const std::vector<Chunk> &chunks() const { return chunks_; }

    /** Chunk containing @p addr, or -1. */
    int chunkOf(Addr addr) const;

    /** Name of chunk @p id ("?" for -1). */
    const char *name(int id) const;

  private:
    std::vector<Chunk> chunks_;  ///< sorted by base
};

/**
 * Per-instruction memory-access attribution: for every load, store
 * and triggering store, the data chunk its address statically
 * resolves to (-1 when unknown — e.g. stack traffic or an address the
 * abstraction loses track of).
 */
class AccessMap
{
  public:
    AccessMap(const Cfg &cfg, const ChunkTable &chunks);

    /** Chunk accessed by the memory instruction at @p pc, or -1. */
    int chunkAt(std::uint64_t pc) const
    {
        return pc < perPc_.size() ? perPc_[pc] : -1;
    }

  private:
    std::vector<int> perPc_;
};

} // namespace dttsim::analysis
