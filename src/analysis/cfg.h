#pragma once

/**
 * @file
 * Control-flow graph over a decoded isa::Program: basic blocks,
 * successor edges and reachability. The graph is call-aware — `jal`
 * with a link register is a Call (the callee entry becomes a function
 * root and the fall-through is the return point), `jalr` is a Return —
 * which matches the only calling convention the builder workloads use.
 *
 * Two edge views serve different clients:
 *  - Full: calls edge into both the callee and the fall-through;
 *    used for whole-program reachability (unreachable-code, handler
 *    write-set collection).
 *  - CallSkip: calls edge only to the fall-through ("the callee
 *    returns"); used by the dataflow passes, which model callee
 *    effects with summaries instead of edges.
 *
 * Construction is total: malformed programs (targets outside the
 * text) still produce a graph — the offending edges are simply
 * dropped and the instruction is recorded for the verifier to report.
 */

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace dttsim::analysis {

/** How a basic block ends. */
enum class BlockExit : std::uint8_t {
    Fallthrough,  ///< non-control last instruction; next block follows
    Branch,       ///< conditional branch: target + fall-through
    Jump,         ///< unconditional jump (jal x0): target only
    Call,         ///< linking jal: callee + fall-through (returns)
    Return,       ///< jalr: dynamic target, treated as subroutine return
    Halt,         ///< HALT
    Tret,         ///< TRET (DTT thread end)
    FallOff,      ///< last block runs past the end of the text
};

/** One basic block: the PC range [first, last] plus its edges. */
struct BasicBlock
{
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    BlockExit exit = BlockExit::Fallthrough;
    int succTarget = -1;  ///< block id of branch/jump/call target
    int succFall = -1;    ///< block id of the fall-through successor
};

/** Edge view selector for traversals. */
enum class EdgeView {
    Full,      ///< calls follow both callee and fall-through
    CallSkip,  ///< calls follow only the fall-through
};

/** Control-flow graph of one program. */
class Cfg
{
  public:
    explicit Cfg(const isa::Program &prog);

    const isa::Program &program() const { return *prog_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block containing @p pc; -1 if pc is outside the text. */
    int blockOf(std::uint64_t pc) const;

    /** Entry block of the main thread (-1 for an empty program). */
    int entryBlock() const { return entryBlock_; }

    /** treg-registered thread bodies: trigger id -> entry PCs. */
    const std::multimap<TriggerId, std::uint64_t> &handlerEntries() const
    {
        return handlerEntries_;
    }

    /** Entry PCs of blocks reached by linking calls. */
    const std::set<std::uint64_t> &calleeEntries() const
    {
        return calleeEntries_;
    }

    /** PCs of control/treg instructions whose target is outside the
     *  text (their edges were dropped). */
    const std::vector<std::uint64_t> &badTargetPcs() const
    {
        return badTargetPcs_;
    }

    /** Successor block ids of @p block under @p view. */
    std::vector<int> successors(int block, EdgeView view) const;

    /**
     * Blocks reachable from @p roots (block ids) under @p view,
     * as a per-block flag vector.
     */
    std::vector<bool> reachable(const std::vector<int> &roots,
                                EdgeView view) const;

    /** Roots of whole-program reachability: entry + handler entries. */
    std::vector<int> programRoots() const;

  private:
    const isa::Program *prog_;
    std::vector<BasicBlock> blocks_;
    std::vector<std::uint64_t> firsts_;  ///< blocks_[i].first (sorted)
    int entryBlock_ = -1;
    std::multimap<TriggerId, std::uint64_t> handlerEntries_;
    std::set<std::uint64_t> calleeEntries_;
    std::vector<std::uint64_t> badTargetPcs_;
};

} // namespace dttsim::analysis
