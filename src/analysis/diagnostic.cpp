#include "analysis/diagnostic.h"

#include <algorithm>

#include "common/log.h"

namespace dttsim::analysis {

namespace {

const DiagInfo kCatalogue[] = {
    {"A001", "unreachable-code", Severity::Warning,
     "dead blocks hide miswired branches and bloat the working set"},
    {"A002", "use-before-def", Severity::Warning,
     "reads a register no path has written; simulates as zero but is"
     " almost always an authoring bug"},
    {"A003", "bad-target", Severity::Error,
     "branch/jump/treg target lands outside the program text"},
    {"A004", "dangling-trigger", Severity::Error,
     "a triggering store fires a trigger id with no registered thread"
     " body"},
    {"A005", "non-terminating-thread", Severity::Error,
     "a DTT thread body must reach TRET on every path; HALT, a"
     " top-level return, or an escaping loop wedges the context"},
    {"A006", "racy-trigger-write", Severity::Error,
     "the main thread consumes handler-written data without a TWAIT"
     " fence, breaking silent-store suppression semantics"},
    {"A007", "fall-off-end", Severity::Error,
     "execution can run past the last instruction of the text"},
    {"A008", "redundant-load", Severity::Lint,
     "reloads an address no intervening instruction can have changed"
     " (the static analogue of the paper's redundant-load metric)"},
    {"A009", "no-drop-fallback", Severity::Warning,
     "correctness depends on the triggered thread always firing: on a"
     " Drop-class machine (or under fault injection) a lost firing is"
     " only recoverable through the TCHK-bit62 -> recompute -> TCLR"
     " fallback idiom, and this program never reads TCHK"},
    {"A010", "dynamic-redundant-load", Severity::Lint,
     "the shadow profiler measured this load as mostly redundant but"
     " the static lint missed it — cross-block or data-dependent"
     " redundancy only visible at run time"},
    {"A011", "stale-static-finding", Severity::Lint,
     "an A008 redundant-load claim anchors an instruction that never"
     " commits dynamically, so the static finding is unverifiable on"
     " this input"},
    {"A012", "silent-store-trigger-candidate", Severity::Lint,
     "a hot, mostly-silent store the analyzer can prove safe to"
     " convert into a triggering store — the automatic DTT"
     " opportunity the paper's Fig. 2 metric points at"},
};

static_assert(sizeof(kCatalogue) / sizeof(kCatalogue[0]) ==
                  static_cast<std::size_t>(DiagId::NumDiagIds),
              "diagnostic catalogue out of sync with DiagId");

} // namespace

const DiagInfo &
diagInfo(DiagId id)
{
    auto idx = static_cast<std::size_t>(id);
    if (idx >= static_cast<std::size_t>(DiagId::NumDiagIds))
        panic("diagInfo: invalid diagnostic id %zu", idx);
    return kCatalogue[idx];
}

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Lint: return "lint";
    }
    return "?";
}

std::string
formatDiagnostic(const Diagnostic &d, const isa::Program *prog)
{
    const DiagInfo &info = diagInfo(d.id);
    std::string loc;
    if (d.pc == kNoPc) {
        loc = "<program>";
    } else {
        loc = strfmt("pc %llu", static_cast<unsigned long long>(d.pc));
        if (prog != nullptr) {
            // Nearest preceding text label, if any.
            const std::string *best = nullptr;
            std::uint64_t best_pc = 0;
            for (const auto &[name, pc] : prog->labels()) {
                if (pc <= d.pc && (best == nullptr || pc >= best_pc)) {
                    best = &name;
                    best_pc = pc;
                }
            }
            if (best != nullptr)
                loc += strfmt(" (%s+%llu)", best->c_str(),
                              static_cast<unsigned long long>(d.pc
                                                              - best_pc));
        }
    }
    return strfmt("%s: %s %s [%s] %s", loc.c_str(), info.code,
                  severityName(d.severity), info.name,
                  d.message.c_str());
}

bool
hasErrors(const std::vector<Diagnostic> &diags)
{
    return std::any_of(diags.begin(), diags.end(),
                       [](const Diagnostic &d) {
                           return d.severity == Severity::Error;
                       });
}

void
sortDiagnostics(std::vector<Diagnostic> &diags)
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.pc != b.pc)
                             return a.pc < b.pc;
                         return static_cast<int>(a.id)
                             < static_cast<int>(b.id);
                     });
}

std::string
dataflowRegName(int reg)
{
    if (reg >= 32)
        return strfmt("f%d", reg - 32);
    static const char *const alias[32] = {
        "zero", "ra", "sp", nullptr, nullptr, "t0", "t1", "t2",
        "t3", "t4", "a0", "a1", "a2", "a3", "a4", "a5",
        "a6", "a7", "s0", "s1", "s2", "s3", "s4", "s5",
        "s6", "s7", "s8", "s9", "t5", "t6", "t7", "t8",
    };
    if (alias[reg] != nullptr)
        return strfmt("x%d/%s", reg, alias[reg]);
    return strfmt("x%d", reg);
}

} // namespace dttsim::analysis
