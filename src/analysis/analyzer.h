#pragma once

/**
 * @file
 * Entry point of the static analyzer: run every pass over a program
 * and collect the findings plus the store-safety verdicts that
 * profile::Advisor consumes (a store the analyzer cannot prove safe
 * to convert must never be recommended as a trigger candidate).
 */

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "isa/program.h"

namespace dttsim::analysis {

/** Pass selection. */
struct AnalyzeOptions
{
    bool lint = true;  ///< include advisory findings (A008)
    /** Opt-in robustness check (A009): flag triggers with no TCHK
     *  drop fallback. Off by default — programs targeting a Stall
     *  machine legitimately skip the fallback idiom. */
    bool dropFallback = false;
};

/** Everything the analyzer concluded about one program. */
struct AnalysisResult
{
    /** All findings, in stable (pc, id) order. */
    std::vector<Diagnostic> diagnostics;

    /**
     * Static stores it would be UNSAFE to convert into triggering
     * stores, keyed by PC, with a human-readable reason: stores inside
     * thread bodies, stores to data some thread body also writes, and
     * stores that already trigger.
     */
    std::map<std::uint64_t, std::string> unsafeStores;

    /** True when any finding is an Error. */
    bool
    errors() const
    {
        return hasErrors(diagnostics);
    }

    /** Safety verdict for converting the store at @p pc. */
    bool
    storeSafe(std::uint64_t pc) const
    {
        return unsafeStores.find(pc) == unsafeStores.end();
    }
};

/** Run all passes over @p prog. Never throws on malformed programs —
 *  malformation is what the diagnostics report. */
AnalysisResult analyze(const isa::Program &prog,
                       const AnalyzeOptions &opts = {});

} // namespace dttsim::analysis
