#include "analysis/cfg.h"

#include <algorithm>

#include "isa/opcodes.h"

namespace dttsim::analysis {

namespace {

using isa::Format;
using isa::Inst;
using isa::Opcode;

/** True when @p op ends a basic block. */
bool
endsBlock(Opcode op)
{
    return isa::isControl(op) || op == Opcode::HALT
        || op == Opcode::TRET;
}

/** Static control-transfer target of @p inst, if it has one. */
bool
staticTarget(const Inst &inst, std::uint64_t &target)
{
    switch (isa::opInfo(inst.op).format) {
      case Format::Branch:
      case Format::Jump:
        target = static_cast<std::uint64_t>(inst.imm);
        return true;
      default:
        return false;
    }
}

} // namespace

Cfg::Cfg(const isa::Program &prog) : prog_(&prog)
{
    const auto &text = prog.text();
    const std::uint64_t n = prog.size();
    if (n == 0)
        return;

    auto inRange = [n](std::uint64_t pc) { return pc < n; };

    // ---- pass 1: leaders --------------------------------------------
    std::vector<bool> leader(n, false);
    auto markLeader = [&](std::uint64_t pc) {
        if (inRange(pc))
            leader[pc] = true;
    };
    markLeader(prog.entry());
    for (std::uint64_t pc = 0; pc < n; ++pc) {
        const Inst &inst = text[pc];
        std::uint64_t target = 0;
        if (staticTarget(inst, target)) {
            if (inRange(target))
                markLeader(target);
            else
                badTargetPcs_.push_back(pc);
        }
        if (inst.op == Opcode::TREG) {
            auto entry = static_cast<std::uint64_t>(inst.imm);
            if (inRange(entry)) {
                markLeader(entry);
                handlerEntries_.emplace(inst.trig, entry);
            } else {
                badTargetPcs_.push_back(pc);
            }
        }
        if (inst.op == Opcode::JAL && inst.rd != 0
            && inRange(static_cast<std::uint64_t>(inst.imm)))
            calleeEntries_.insert(static_cast<std::uint64_t>(inst.imm));
        if (endsBlock(inst.op))
            markLeader(pc + 1);  // no-op when pc+1 == n
    }
    leader[0] = true;

    // ---- pass 2: blocks ---------------------------------------------
    for (std::uint64_t pc = 0; pc < n; ++pc) {
        if (!leader[pc])
            continue;
        BasicBlock b;
        b.first = pc;
        std::uint64_t last = pc;
        while (last + 1 < n && !leader[last + 1]
               && !endsBlock(text[last].op))
            ++last;
        b.last = last;
        blocks_.push_back(b);
        firsts_.push_back(pc);
    }

    // ---- pass 3: exits and edges ------------------------------------
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        BasicBlock &b = blocks_[i];
        const Inst &lastInst = text[b.last];
        std::uint64_t fall = b.last + 1;
        std::uint64_t target = 0;
        bool hasTarget = staticTarget(lastInst, target)
            && inRange(target);

        if (isa::opInfo(lastInst.op).format == Format::Branch) {
            b.exit = BlockExit::Branch;
            b.succTarget = hasTarget ? blockOf(target) : -1;
            b.succFall = inRange(fall) ? blockOf(fall) : -1;
        } else if (lastInst.op == Opcode::JAL) {
            if (lastInst.rd == 0) {
                b.exit = BlockExit::Jump;
                b.succTarget = hasTarget ? blockOf(target) : -1;
            } else {
                b.exit = BlockExit::Call;
                b.succTarget = hasTarget ? blockOf(target) : -1;
                b.succFall = inRange(fall) ? blockOf(fall) : -1;
            }
        } else if (lastInst.op == Opcode::JALR) {
            b.exit = BlockExit::Return;
        } else if (lastInst.op == Opcode::HALT) {
            b.exit = BlockExit::Halt;
        } else if (lastInst.op == Opcode::TRET) {
            b.exit = BlockExit::Tret;
        } else if (!inRange(fall)) {
            b.exit = BlockExit::FallOff;
        } else {
            b.exit = BlockExit::Fallthrough;
            b.succFall = blockOf(fall);
        }
        // A call or branch whose fall-through runs off the end.
        if ((b.exit == BlockExit::Call || b.exit == BlockExit::Branch)
            && !inRange(fall))
            b.succFall = -1;
    }

    entryBlock_ = blockOf(prog.entry());
}

int
Cfg::blockOf(std::uint64_t pc) const
{
    if (pc >= prog_->size())
        return -1;
    auto it = std::upper_bound(firsts_.begin(), firsts_.end(), pc);
    return static_cast<int>(it - firsts_.begin()) - 1;
}

std::vector<int>
Cfg::successors(int block, EdgeView view) const
{
    std::vector<int> out;
    const BasicBlock &b = blocks_[static_cast<std::size_t>(block)];
    switch (b.exit) {
      case BlockExit::Branch:
        if (b.succTarget >= 0)
            out.push_back(b.succTarget);
        if (b.succFall >= 0)
            out.push_back(b.succFall);
        break;
      case BlockExit::Jump:
        if (b.succTarget >= 0)
            out.push_back(b.succTarget);
        break;
      case BlockExit::Call:
        if (view == EdgeView::Full && b.succTarget >= 0)
            out.push_back(b.succTarget);
        if (b.succFall >= 0)
            out.push_back(b.succFall);
        break;
      case BlockExit::Fallthrough:
        if (b.succFall >= 0)
            out.push_back(b.succFall);
        break;
      case BlockExit::Return:
      case BlockExit::Halt:
      case BlockExit::Tret:
      case BlockExit::FallOff:
        break;
    }
    return out;
}

std::vector<bool>
Cfg::reachable(const std::vector<int> &roots, EdgeView view) const
{
    std::vector<bool> seen(blocks_.size(), false);
    std::vector<int> stack;
    for (int r : roots) {
        if (r >= 0 && !seen[static_cast<std::size_t>(r)]) {
            seen[static_cast<std::size_t>(r)] = true;
            stack.push_back(r);
        }
    }
    while (!stack.empty()) {
        int b = stack.back();
        stack.pop_back();
        for (int s : successors(b, view)) {
            if (!seen[static_cast<std::size_t>(s)]) {
                seen[static_cast<std::size_t>(s)] = true;
                stack.push_back(s);
            }
        }
    }
    return seen;
}

std::vector<int>
Cfg::programRoots() const
{
    std::vector<int> roots;
    if (entryBlock_ >= 0)
        roots.push_back(entryBlock_);
    for (const auto &[trig, pc] : handlerEntries_) {
        (void)trig;
        int b = blockOf(pc);
        if (b >= 0)
            roots.push_back(b);
    }
    return roots;
}

} // namespace dttsim::analysis
