#include "analysis/verifier.h"

#include <algorithm>
#include <deque>
#include <string>
#include <tuple>

#include "analysis/dataflow.h"
#include "common/log.h"
#include "isa/opcodes.h"

namespace dttsim::analysis {

namespace {

using isa::Inst;
using isa::Opcode;

std::string
pcStr(std::uint64_t pc)
{
    return std::to_string(pc);
}

Diagnostic
make(DiagId id, std::uint64_t pc, std::string msg)
{
    Diagnostic d;
    d.id = id;
    d.severity = diagInfo(id).severity;
    d.pc = pc;
    d.message = std::move(msg);
    return d;
}

/** Trigger-id bitmask of the tsd/tsw/tsb instructions Full-reachable
 *  from @p root (used as a callee may-generate summary). */
std::uint64_t
mayGenFrom(const Cfg &cfg, int root)
{
    std::uint64_t mask = 0;
    auto seen = cfg.reachable({root}, EdgeView::Full);
    const auto &text = cfg.program().text();
    for (std::size_t b = 0; b < seen.size(); ++b) {
        if (!seen[b])
            continue;
        const BasicBlock &blk = cfg.blocks()[b];
        for (std::uint64_t pc = blk.first; pc <= blk.last; ++pc) {
            const Inst &inst = text[pc];
            if (isa::isTStore(inst.op) && inst.trig >= 0
                && inst.trig < 64)
                mask |= std::uint64_t(1) << inst.trig;
        }
    }
    return mask;
}

} // namespace

TriggerFacts
collectTriggerFacts(const Cfg &cfg, const AccessMap &access)
{
    TriggerFacts facts;
    const auto &text = cfg.program().text();

    for (const auto &[trig, entry] : cfg.handlerEntries()) {
        int eb = cfg.blockOf(entry);
        if (eb < 0)
            continue;
        auto seen = cfg.reachable({eb}, EdgeView::Full);
        for (std::size_t b = 0; b < seen.size(); ++b) {
            if (!seen[b])
                continue;
            const BasicBlock &blk = cfg.blocks()[b];
            for (std::uint64_t pc = blk.first; pc <= blk.last; ++pc) {
                if (!isa::isStore(text[pc].op))
                    continue;
                int chunk = access.chunkAt(pc);
                if (chunk < 0)
                    continue;
                facts.handlerWrites[trig].insert(chunk);
                facts.writePc.emplace(std::make_pair(trig, chunk), pc);
            }
        }
    }

    auto fromMain = cfg.reachable({cfg.entryBlock()}, EdgeView::Full);
    auto fromHandlers =
        cfg.reachable(
            [&] {
                std::vector<int> roots;
                for (const auto &[trig, pc] : cfg.handlerEntries()) {
                    (void)trig;
                    roots.push_back(cfg.blockOf(pc));
                }
                return roots;
            }(),
            EdgeView::Full);
    facts.handlerOnly.assign(cfg.blocks().size(), false);
    for (std::size_t b = 0; b < cfg.blocks().size(); ++b)
        facts.handlerOnly[b] = fromHandlers[b] && !fromMain[b];
    return facts;
}

void
checkTargets(const Cfg &cfg, std::vector<Diagnostic> &out)
{
    const auto &text = cfg.program().text();
    for (std::uint64_t pc : cfg.badTargetPcs()) {
        const Inst &inst = text[pc];
        out.push_back(make(
            DiagId::BadTarget, pc,
            std::string(isa::mnemonic(inst.op)) + " targets pc "
                + std::to_string(inst.imm) + ", outside the text (size "
                + std::to_string(cfg.program().size()) + ")"));
    }
}

void
checkTriggers(const Cfg &cfg, std::vector<Diagnostic> &out)
{
    const auto &text = cfg.program().text();
    std::set<TriggerId> registered;
    for (const Inst &inst : text)
        if (inst.op == Opcode::TREG)
            registered.insert(inst.trig);

    for (std::uint64_t pc = 0; pc < cfg.program().size(); ++pc) {
        const Inst &inst = text[pc];
        bool usesTrig = isa::isTStore(inst.op)
            || inst.op == Opcode::TREG || inst.op == Opcode::TUNREG
            || inst.op == Opcode::TWAIT || inst.op == Opcode::TCHK
            || inst.op == Opcode::TCLR;
        if (!usesTrig)
            continue;
        if (inst.trig < 0) {
            out.push_back(make(DiagId::DanglingTrigger, pc,
                               std::string(isa::mnemonic(inst.op))
                                   + " names invalid trigger id "
                                   + std::to_string(inst.trig)));
            continue;
        }
        if (inst.op == Opcode::TREG || registered.count(inst.trig))
            continue;
        if (isa::isTStore(inst.op)) {
            out.push_back(make(
                DiagId::DanglingTrigger, pc,
                std::string(isa::mnemonic(inst.op)) + " fires trigger "
                    + std::to_string(inst.trig)
                    + ", but no treg registers a thread body for it"));
        } else {
            Diagnostic d = make(
                DiagId::DanglingTrigger, pc,
                std::string(isa::mnemonic(inst.op))
                    + " synchronizes on trigger "
                    + std::to_string(inst.trig)
                    + ", which no treg ever registers");
            d.severity = Severity::Warning;  // a no-op, not a fault
            out.push_back(d);
        }
    }
}

void
checkUnreachable(const Cfg &cfg, std::vector<Diagnostic> &out)
{
    if (cfg.blocks().empty())
        return;
    auto seen = cfg.reachable(cfg.programRoots(), EdgeView::Full);
    for (std::size_t b = 0; b < seen.size(); ++b) {
        if (seen[b])
            continue;
        const BasicBlock &blk = cfg.blocks()[b];
        out.push_back(make(
            DiagId::UnreachableCode, blk.first,
            "block [" + pcStr(blk.first) + ", " + pcStr(blk.last)
                + "] is unreachable from the entry and from every "
                  "registered thread body"));
    }
}

void
checkFallOff(const Cfg &cfg, std::vector<Diagnostic> &out)
{
    if (cfg.blocks().empty())
        return;
    auto seen = cfg.reachable(cfg.programRoots(), EdgeView::Full);
    for (std::size_t b = 0; b < seen.size(); ++b) {
        if (!seen[b])
            continue;
        const BasicBlock &blk = cfg.blocks()[b];
        if (blk.exit == BlockExit::FallOff)
            out.push_back(make(
                DiagId::FallOffEnd, blk.last,
                "execution can fall off the end of the text (no halt, "
                "tret or jump terminates this path)"));
    }
}

namespace {

/** Blocks within @p inSet that can reach a block whose exit satisfies
 *  @p isExit, via CallSkip edges restricted to @p inSet. */
std::vector<bool>
canReach(const Cfg &cfg, const std::vector<bool> &inSet,
         bool (*isExit)(BlockExit))
{
    const std::size_t n = cfg.blocks().size();
    // Reverse adjacency restricted to the subgraph.
    std::vector<std::vector<int>> preds(n);
    std::vector<bool> can(n, false);
    std::vector<int> stack;
    for (std::size_t b = 0; b < n; ++b) {
        if (!inSet[b])
            continue;
        if (isExit(cfg.blocks()[b].exit)) {
            can[b] = true;
            stack.push_back(static_cast<int>(b));
        }
        for (int s : cfg.successors(static_cast<int>(b),
                                    EdgeView::CallSkip))
            if (inSet[static_cast<std::size_t>(s)])
                preds[static_cast<std::size_t>(s)].push_back(
                    static_cast<int>(b));
    }
    while (!stack.empty()) {
        int b = stack.back();
        stack.pop_back();
        for (int p : preds[static_cast<std::size_t>(b)]) {
            if (!can[static_cast<std::size_t>(p)]) {
                can[static_cast<std::size_t>(p)] = true;
                stack.push_back(p);
            }
        }
    }
    return can;
}

} // namespace

void
checkThreadTermination(const Cfg &cfg, std::vector<Diagnostic> &out)
{
    // Thread bodies: every path from the entry must end in TRET.
    for (const auto &[trig, entry] : cfg.handlerEntries()) {
        int eb = cfg.blockOf(entry);
        if (eb < 0)
            continue;
        auto body = cfg.reachable({eb}, EdgeView::CallSkip);
        for (std::size_t b = 0; b < body.size(); ++b) {
            if (!body[b])
                continue;
            const BasicBlock &blk = cfg.blocks()[b];
            if (blk.exit == BlockExit::Halt)
                out.push_back(make(
                    DiagId::NonTerminatingThread, blk.last,
                    "thread body for trigger " + std::to_string(trig)
                        + " executes halt instead of tret"));
            else if (blk.exit == BlockExit::Return)
                out.push_back(make(
                    DiagId::NonTerminatingThread, blk.last,
                    "thread body for trigger " + std::to_string(trig)
                        + " returns via jalr at its top level; a "
                          "spawned thread has no caller to return to"));
        }
        auto reachesTret = canReach(cfg, body, [](BlockExit e) {
            return e == BlockExit::Tret;
        });
        std::uint64_t worst = kNoPc;
        for (std::size_t b = 0; b < body.size(); ++b) {
            if (!body[b] || reachesTret[b])
                continue;
            const BasicBlock &blk = cfg.blocks()[b];
            // Halt/Return/FallOff exits already have their own report.
            if (blk.exit == BlockExit::Halt
                || blk.exit == BlockExit::Return
                || blk.exit == BlockExit::FallOff)
                continue;
            worst = std::min(worst, blk.first);
        }
        if (worst != kNoPc)
            out.push_back(make(
                DiagId::NonTerminatingThread, worst,
                "no path from here reaches tret: the trigger-"
                    + std::to_string(trig)
                    + " thread would never terminate"));
    }

    // Called subroutines must be able to return (or tret, for helpers
    // only used by thread bodies). A routine with no such exit at all
    // wedges every caller.
    for (std::uint64_t entry : cfg.calleeEntries()) {
        int eb = cfg.blockOf(entry);
        if (eb < 0)
            continue;
        auto body = cfg.reachable({eb}, EdgeView::CallSkip);
        bool canFinish = false;
        for (std::size_t b = 0; b < body.size() && !canFinish; ++b)
            if (body[b]) {
                BlockExit e = cfg.blocks()[b].exit;
                canFinish = e == BlockExit::Return
                    || e == BlockExit::Tret || e == BlockExit::Halt;
            }
        if (!canFinish)
            out.push_back(make(
                DiagId::NonTerminatingThread, entry,
                "subroutine called at pc " + pcStr(entry)
                    + " has no reachable return (jalr/tret/halt): "
                      "callers can never resume"));
    }
}

void
checkRaces(const Cfg &cfg, const ChunkTable &chunks,
           const AccessMap &access, const TriggerFacts &facts,
           std::vector<Diagnostic> &out)
{
    if (facts.handlerWrites.empty() || cfg.entryBlock() < 0)
        return;
    const auto &text = cfg.program().text();
    const std::size_t nblocks = cfg.blocks().size();

    // May-generate summaries per callee entry block.
    std::map<int, std::uint64_t> calleeGen;
    for (std::uint64_t pc : cfg.calleeEntries()) {
        int eb = cfg.blockOf(pc);
        if (eb >= 0)
            calleeGen.emplace(eb, mayGenFrom(cfg, eb));
    }

    // Forward may-pending analysis from the entry. Calls carry the
    // state into the callee; the fall-through additionally assumes
    // everything the callee may fire is still pending.
    auto step = [&](const Inst &inst, std::uint64_t pending) {
        if (isa::isTStore(inst.op) && inst.trig >= 0 && inst.trig < 64)
            return pending | std::uint64_t(1) << inst.trig;
        if (inst.op == Opcode::TWAIT && inst.trig >= 0
            && inst.trig < 64)
            return pending & ~(std::uint64_t(1) << inst.trig);
        return pending;
    };
    auto walk = [&](int bi, std::uint64_t pending) {
        const BasicBlock &b =
            cfg.blocks()[static_cast<std::size_t>(bi)];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc)
            pending = step(text[pc], pending);
        return pending;
    };

    std::vector<std::uint64_t> in(nblocks, 0);
    std::vector<bool> reached(nblocks, false);
    std::deque<int> work;
    std::vector<bool> queued(nblocks, false);
    auto push = [&](int b) {
        if (!queued[static_cast<std::size_t>(b)]) {
            queued[static_cast<std::size_t>(b)] = true;
            work.push_back(b);
        }
    };
    reached[static_cast<std::size_t>(cfg.entryBlock())] = true;
    push(cfg.entryBlock());

    auto propagate = [&](int to, std::uint64_t pending) {
        if (to < 0)
            return;
        auto i = static_cast<std::size_t>(to);
        std::uint64_t merged = in[i] | pending;
        if (!reached[i] || merged != in[i]) {
            in[i] = merged;
            reached[i] = true;
            push(to);
        }
    };
    while (!work.empty()) {
        int bi = work.front();
        work.pop_front();
        auto i = static_cast<std::size_t>(bi);
        queued[i] = false;
        const BasicBlock &b = cfg.blocks()[i];
        std::uint64_t pout = walk(bi, in[i]);
        if (b.exit == BlockExit::Call) {
            propagate(b.succTarget, pout);
            std::uint64_t gen = 0;
            if (auto it = calleeGen.find(b.succTarget);
                it != calleeGen.end())
                gen = it->second;
            propagate(b.succFall, pout | gen);
        } else {
            for (int s : cfg.successors(bi, EdgeView::Full))
                propagate(s, pout);
        }
    }

    // Report: a load of (or a plain store to) a chunk some pending
    // trigger's thread body writes, with no twait in between.
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
        if (!reached[bi])
            continue;
        const BasicBlock &b = cfg.blocks()[bi];
        std::uint64_t pending = in[bi];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc) {
            const Inst &inst = text[pc];
            bool isPlainAccess = isa::isLoad(inst.op)
                || (isa::isStore(inst.op) && !isa::isTStore(inst.op));
            int chunk = isPlainAccess ? access.chunkAt(pc) : -1;
            if (chunk >= 0 && pending != 0) {
                for (const auto &[trig, written] : facts.handlerWrites) {
                    if (trig < 0 || trig >= 64
                        || !(pending & std::uint64_t(1) << trig)
                        || !written.count(chunk))
                        continue;
                    auto wp = facts.writePc.find({trig, chunk});
                    out.push_back(make(
                        DiagId::RacyTriggerWrite, pc,
                        std::string(isa::isLoad(inst.op) ? "load from"
                                                         : "store to")
                            + " '" + chunks.name(chunk)
                            + "' races with the trigger-"
                            + std::to_string(trig)
                            + " thread (which writes it at pc "
                            + (wp != facts.writePc.end()
                                   ? pcStr(wp->second) : "?")
                            + "); no twait " + std::to_string(trig)
                            + " fences this path"));
                    break;  // one report per access
                }
            }
            pending = step(inst, pending);
        }
    }
}

void
lintRedundantLoads(const Cfg &cfg, const AccessMap &access,
                   std::vector<Diagnostic> &out)
{
    if (cfg.blocks().empty())
        return;
    const auto &text = cfg.program().text();
    auto seen = cfg.reachable(cfg.programRoots(), EdgeView::Full);

    struct Key
    {
        int base;
        std::int64_t imm;
        Opcode op;
        bool
        operator<(const Key &o) const
        {
            return std::tie(base, imm, op)
                < std::tie(o.base, o.imm, o.op);
        }
    };
    struct Prior
    {
        std::uint64_t pc;
        int chunk;
    };

    for (std::size_t bi = 0; bi < cfg.blocks().size(); ++bi) {
        if (!seen[bi])
            continue;
        const BasicBlock &b = cfg.blocks()[bi];
        std::map<Key, Prior> live;
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc) {
            const Inst &inst = text[pc];
            if (inst.op == Opcode::TWAIT) {
                // A fence: thread bodies may have rewritten anything.
                live.clear();
                continue;
            }
            if (isa::isLoad(inst.op)) {
                Key k{inst.rs1, inst.imm, inst.op};
                auto it = live.find(k);
                if (it != live.end()) {
                    out.push_back(make(
                        DiagId::RedundantLoad, pc,
                        std::string(isa::mnemonic(inst.op))
                            + " repeats the load at pc "
                            + pcStr(it->second.pc)
                            + " with no intervening store; the value "
                              "is provably the same"));
                } else {
                    live.emplace(k, Prior{pc, access.chunkAt(pc)});
                }
                if (inst.op != Opcode::FLD) {
                    // The loaded register may be someone's base.
                    for (auto i = live.begin(); i != live.end();)
                        i = i->first.base == inst.rd ? live.erase(i)
                                                     : std::next(i);
                }
                continue;
            }
            if (isa::isStore(inst.op)) {
                int sc = access.chunkAt(pc);
                for (auto i = live.begin(); i != live.end();) {
                    bool mayAlias = sc < 0 || i->second.chunk < 0
                        || i->second.chunk == sc;
                    i = mayAlias ? live.erase(i) : std::next(i);
                }
                continue;
            }
            UseDef ud = useDef(inst);
            if (ud.defs & ((std::uint64_t(1) << 32) - 1)) {
                for (auto i = live.begin(); i != live.end();)
                    i = (ud.defs & std::uint64_t(1) << i->first.base)
                        ? live.erase(i) : std::next(i);
            }
        }
    }
}

void
checkDropFallback(const Cfg &cfg, std::vector<Diagnostic> &out)
{
    // A trigger whose results the program waits for (TWAIT) but whose
    // overflow flag it never inspects (no TCHK anywhere) silently
    // loses work when a firing is dropped: TWAIT is satisfied — the
    // dropped firing is not pending — yet the handler never ran.
    struct Facts
    {
        bool fires = false;
        bool checked = false;
        std::uint64_t firstTwait = kNoPc;
    };
    std::map<TriggerId, Facts> byTrigger;
    const auto &text = cfg.program().text();
    for (std::uint64_t pc = 0; pc < text.size(); ++pc) {
        const Inst &inst = text[pc];
        if (isa::isTStore(inst.op)) {
            byTrigger[inst.trig].fires = true;
        } else if (inst.op == Opcode::TCHK) {
            byTrigger[inst.trig].checked = true;
        } else if (inst.op == Opcode::TWAIT) {
            Facts &f = byTrigger[inst.trig];
            if (f.firstTwait == kNoPc)
                f.firstTwait = pc;
        }
    }
    for (const auto &[trig, f] : byTrigger) {
        if (!f.fires || f.checked || f.firstTwait == kNoPc)
            continue;
        out.push_back(make(
            DiagId::DropFallbackMissing, f.firstTwait,
            strfmt("trigger %d is fired and fenced but its overflow "
                   "flag is never read: a firing lost to a Drop-class "
                   "queue policy or fault injection goes unnoticed; "
                   "add a TCHK bit-62 check with an inline recompute "
                   "fallback (then TCLR) after this twait",
                   trig)));
    }
}

} // namespace dttsim::analysis
