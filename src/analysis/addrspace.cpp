#include "analysis/addrspace.h"

#include <algorithm>
#include <array>
#include <deque>

#include "isa/opcodes.h"

namespace dttsim::analysis {

// ---- ChunkTable -----------------------------------------------------

ChunkTable::ChunkTable(const isa::Program &prog)
{
    for (const auto &[name, base] : prog.dataSymbols())
        chunks_.push_back(Chunk{name, base, 0});
    std::sort(chunks_.begin(), chunks_.end(),
              [](const Chunk &a, const Chunk &b) {
                  return a.base < b.base;
              });
    for (std::size_t i = 0; i < chunks_.size(); ++i)
        chunks_[i].end = (i + 1 < chunks_.size())
            ? chunks_[i + 1].base : prog.dataEnd();
}

int
ChunkTable::chunkOf(Addr addr) const
{
    auto it = std::upper_bound(chunks_.begin(), chunks_.end(), addr,
                               [](Addr a, const Chunk &c) {
                                   return a < c.base;
                               });
    if (it == chunks_.begin())
        return -1;
    --it;
    if (addr >= it->end)
        return -1;
    return static_cast<int>(it - chunks_.begin());
}

const char *
ChunkTable::name(int id) const
{
    if (id < 0 || id >= static_cast<int>(chunks_.size()))
        return "?";
    return chunks_[static_cast<std::size_t>(id)].name.c_str();
}

// ---- abstract values ------------------------------------------------

namespace {

using isa::Format;
using isa::Inst;
using isa::Opcode;

/** Abstract integer-register value. */
struct AbsVal
{
    enum class Kind : std::uint8_t { Undef, Const, Chunk, Unknown };
    Kind kind = Kind::Undef;
    std::int64_t c = 0;  ///< Const payload
    int chunk = -1;      ///< Chunk payload

    static AbsVal undef() { return AbsVal{}; }
    static AbsVal unknown()
    {
        return AbsVal{Kind::Unknown, 0, -1};
    }
    static AbsVal constant(std::int64_t v)
    {
        return AbsVal{Kind::Const, v, -1};
    }
    static AbsVal inChunk(int id)
    {
        return id >= 0 ? AbsVal{Kind::Chunk, 0, id} : unknown();
    }

    bool
    operator==(const AbsVal &o) const
    {
        return kind == o.kind && (kind != Kind::Const || c == o.c)
            && (kind != Kind::Chunk || chunk == o.chunk);
    }
};

/** Lattice join (Undef is bottom, Unknown is top). */
AbsVal
join(const AbsVal &a, const AbsVal &b, const ChunkTable &chunks)
{
    using K = AbsVal::Kind;
    if (a.kind == K::Undef)
        return b;
    if (b.kind == K::Undef)
        return a;
    if (a == b)
        return a;
    if (a.kind == K::Unknown || b.kind == K::Unknown)
        return AbsVal::unknown();
    // Const/Chunk mixtures: keep the chunk when both sides agree on it.
    auto chunkOf = [&](const AbsVal &v) {
        return v.kind == K::Chunk
            ? v.chunk
            : chunks.chunkOf(static_cast<Addr>(v.c));
    };
    int ca = chunkOf(a), cb = chunkOf(b);
    if (ca >= 0 && ca == cb)
        return AbsVal::inChunk(ca);
    return AbsVal::unknown();
}

using RegState = std::array<AbsVal, 32>;

RegState
joinState(const RegState &a, const RegState &b, const ChunkTable &ch)
{
    RegState out;
    for (int i = 0; i < 32; ++i)
        out[static_cast<std::size_t>(i)] =
            join(a[static_cast<std::size_t>(i)],
                 b[static_cast<std::size_t>(i)], ch);
    return out;
}

/** addition of an abstract value and a literal immediate. */
AbsVal
addImm(const AbsVal &v, std::int64_t imm, const ChunkTable &chunks)
{
    using K = AbsVal::Kind;
    switch (v.kind) {
      case K::Const:
        return AbsVal::constant(v.c + imm);
      case K::Chunk:
        return AbsVal::inChunk(v.chunk);  // small displacement
      case K::Unknown:
      case K::Undef:
        // "scaled index + chunk base" idiom: the immediate IS the base.
        return AbsVal::inChunk(
            chunks.chunkOf(static_cast<Addr>(imm)));
    }
    return AbsVal::unknown();
}

/** addition of two abstract register values. */
AbsVal
addVals(const AbsVal &a, const AbsVal &b, const ChunkTable &chunks)
{
    using K = AbsVal::Kind;
    if (a.kind == K::Const && b.kind == K::Const)
        return AbsVal::constant(a.c + b.c);
    if (a.kind == K::Const)
        return addImm(b, a.c, chunks);
    if (b.kind == K::Const)
        return addImm(a, b.c, chunks);
    if (a.kind == K::Chunk)
        return AbsVal::inChunk(a.chunk);  // chunk + index
    if (b.kind == K::Chunk)
        return AbsVal::inChunk(b.chunk);
    return AbsVal::unknown();
}

/** Transfer one instruction over @p st; mirrors executor semantics
 *  for the const-foldable integer ops. */
void
transfer(const Inst &inst, RegState &st, const ChunkTable &chunks)
{
    auto get = [&](int r) {
        return r == 0 ? AbsVal::constant(0)
                      : st[static_cast<std::size_t>(r)];
    };
    auto set = [&](int r, const AbsVal &v) {
        if (r != 0)
            st[static_cast<std::size_t>(r)] = v;
    };
    auto binConst = [&](auto fn) {
        AbsVal a = get(inst.rs1), b = get(inst.rs2);
        if (a.kind == AbsVal::Kind::Const
            && b.kind == AbsVal::Kind::Const)
            set(inst.rd, AbsVal::constant(fn(a.c, b.c)));
        else
            set(inst.rd, AbsVal::unknown());
    };
    auto immConst = [&](auto fn) {
        AbsVal a = get(inst.rs1);
        if (a.kind == AbsVal::Kind::Const)
            set(inst.rd, AbsVal::constant(fn(a.c, inst.imm)));
        else
            set(inst.rd, AbsVal::unknown());
    };

    switch (inst.op) {
      case Opcode::LI:
        set(inst.rd, AbsVal::constant(inst.imm));
        break;
      case Opcode::ADDI:
        set(inst.rd, addImm(get(inst.rs1), inst.imm, chunks));
        break;
      case Opcode::ADD:
        set(inst.rd, addVals(get(inst.rs1), get(inst.rs2), chunks));
        break;
      case Opcode::SUB:
        binConst([](std::int64_t a, std::int64_t b) { return a - b; });
        break;
      case Opcode::MUL:
        binConst([](std::int64_t a, std::int64_t b) { return a * b; });
        break;
      case Opcode::AND:
        binConst([](std::int64_t a, std::int64_t b) { return a & b; });
        break;
      case Opcode::OR:
        binConst([](std::int64_t a, std::int64_t b) { return a | b; });
        break;
      case Opcode::XOR:
        binConst([](std::int64_t a, std::int64_t b) { return a ^ b; });
        break;
      case Opcode::ANDI:
        immConst([](std::int64_t a, std::int64_t b) { return a & b; });
        break;
      case Opcode::ORI:
        immConst([](std::int64_t a, std::int64_t b) { return a | b; });
        break;
      case Opcode::XORI:
        immConst([](std::int64_t a, std::int64_t b) { return a ^ b; });
        break;
      case Opcode::SLLI:
        immConst([](std::int64_t a, std::int64_t b) {
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a)
                << (static_cast<std::uint64_t>(b) & 63));
        });
        break;
      case Opcode::SRLI:
        immConst([](std::int64_t a, std::int64_t b) {
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a)
                >> (static_cast<std::uint64_t>(b) & 63));
        });
        break;
      default:
        // Every other writer of an integer register produces Unknown.
        if (isa::writesIntReg(inst.op))
            set(inst.rd, AbsVal::unknown());
        break;
    }
}

/** Abstract address of the memory access @p inst performs, or an
 *  Unknown value for non-memory instructions. */
AbsVal
accessAddr(const Inst &inst, const RegState &st,
           const ChunkTable &chunks)
{
    AbsVal base = inst.rs1 == 0
        ? AbsVal::constant(0)
        : st[static_cast<std::size_t>(inst.rs1)];
    return addImm(base, inst.imm, chunks);
}

} // namespace

// ---- AccessMap ------------------------------------------------------

AccessMap::AccessMap(const Cfg &cfg, const ChunkTable &chunks)
{
    const isa::Program &prog = cfg.program();
    perPc_.assign(prog.size(), -1);
    if (prog.size() == 0 || cfg.blocks().empty())
        return;

    const std::size_t nblocks = cfg.blocks().size();
    std::vector<RegState> in(nblocks);
    std::vector<bool> seeded(nblocks, false);

    // Roots start from an all-Unknown file: entry registers are
    // zero-filled but nothing address-relevant depends on that, and
    // callee/handler entries have caller- or spawn-defined registers.
    RegState unknownState;
    unknownState.fill(AbsVal::unknown());

    std::deque<int> work;
    std::vector<bool> queued(nblocks, false);
    auto push = [&](int b) {
        if (!queued[static_cast<std::size_t>(b)]) {
            queued[static_cast<std::size_t>(b)] = true;
            work.push_back(b);
        }
    };
    auto seedRoot = [&](int b) {
        if (b < 0)
            return;
        in[static_cast<std::size_t>(b)] = unknownState;
        seeded[static_cast<std::size_t>(b)] = true;
        push(b);
    };
    for (int r : cfg.programRoots())
        seedRoot(r);
    for (std::uint64_t pc : cfg.calleeEntries())
        seedRoot(cfg.blockOf(pc));

    while (!work.empty()) {
        int bi = work.front();
        work.pop_front();
        queued[static_cast<std::size_t>(bi)] = false;
        const BasicBlock &b =
            cfg.blocks()[static_cast<std::size_t>(bi)];

        RegState st = in[static_cast<std::size_t>(bi)];
        for (std::uint64_t pc = b.first; pc <= b.last; ++pc) {
            const Inst &inst = prog.text()[pc];
            if (isa::isLoad(inst.op) || isa::isStore(inst.op)) {
                AbsVal a = accessAddr(inst, st, chunks);
                int chunk = a.kind == AbsVal::Kind::Const
                    ? chunks.chunkOf(static_cast<Addr>(a.c))
                    : (a.kind == AbsVal::Kind::Chunk ? a.chunk : -1);
                perPc_[pc] = chunk;
            }
            transfer(inst, st, chunks);
        }

        for (int s : cfg.successors(bi, EdgeView::CallSkip)) {
            auto si = static_cast<std::size_t>(s);
            RegState next = b.exit == BlockExit::Call
                ? unknownState  // a call may clobber everything
                : st;
            RegState merged = seeded[si]
                ? joinState(in[si], next, chunks) : next;
            bool changed = !seeded[si];
            if (seeded[si]) {
                for (int r = 0; r < 32; ++r)
                    if (!(merged[static_cast<std::size_t>(r)]
                          == in[si][static_cast<std::size_t>(r)])) {
                        changed = true;
                        break;
                    }
            }
            if (changed) {
                in[si] = merged;
                seeded[si] = true;
                push(s);
            }
        }
        // Callee entries were seeded Unknown already; the call edge
        // (Full view only) would add nothing beyond that.
    }
}

} // namespace dttsim::analysis
