#include "analysis/analyzer.h"

#include "analysis/addrspace.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/verifier.h"
#include "isa/opcodes.h"

namespace dttsim::analysis {

namespace {

/** Store-safety verdicts for the advisor (see AnalysisResult). */
void
judgeStores(const Cfg &cfg, const ChunkTable &chunks,
            const AccessMap &access, const TriggerFacts &facts,
            std::map<std::uint64_t, std::string> &unsafe)
{
    const auto &text = cfg.program().text();

    // chunk -> one trigger whose thread body writes it
    std::map<int, TriggerId> writtenBy;
    for (const auto &[trig, set] : facts.handlerWrites)
        for (int chunk : set)
            writtenBy.emplace(chunk, trig);

    for (std::uint64_t pc = 0; pc < cfg.program().size(); ++pc) {
        const isa::Inst &inst = text[pc];
        if (!isa::isStore(inst.op))
            continue;
        if (isa::isTStore(inst.op)) {
            unsafe.emplace(pc, "already a triggering store");
            continue;
        }
        int block = cfg.blockOf(pc);
        if (block >= 0
            && facts.handlerOnly[static_cast<std::size_t>(block)]) {
            unsafe.emplace(pc,
                           "inside a DTT thread body; converting it "
                           "would spawn threads from a thread");
            continue;
        }
        int chunk = access.chunkAt(pc);
        if (auto it = writtenBy.find(chunk); it != writtenBy.end()) {
            unsafe.emplace(
                pc, std::string("writes '") + chunks.name(chunk)
                        + "', which the trigger-"
                        + std::to_string(it->second)
                        + " thread body also writes; triggering here "
                          "would race with it");
        }
    }
}

} // namespace

AnalysisResult
analyze(const isa::Program &prog, const AnalyzeOptions &opts)
{
    AnalysisResult res;
    Cfg cfg(prog);
    ChunkTable chunks(prog);
    AccessMap access(cfg, chunks);
    Dataflow dataflow(cfg);
    TriggerFacts facts = collectTriggerFacts(cfg, access);

    checkTargets(cfg, res.diagnostics);
    checkTriggers(cfg, res.diagnostics);
    checkUnreachable(cfg, res.diagnostics);
    checkFallOff(cfg, res.diagnostics);
    checkThreadTermination(cfg, res.diagnostics);
    checkRaces(cfg, chunks, access, facts, res.diagnostics);
    res.diagnostics.insert(res.diagnostics.end(),
                           dataflow.diagnostics().begin(),
                           dataflow.diagnostics().end());
    if (opts.lint)
        lintRedundantLoads(cfg, access, res.diagnostics);
    if (opts.dropFallback)
        checkDropFallback(cfg, res.diagnostics);

    judgeStores(cfg, chunks, access, facts, res.unsafeStores);
    sortDiagnostics(res.diagnostics);
    return res;
}

} // namespace dttsim::analysis
